(* Tests for the chaos subsystem: schedule compilation (determinism,
   windows, side restriction, budget attribution), the bSM property
   oracle's classification across the T-table settings, and the
   pool-parallel chaos sweep's bit-identity and JSON determinism. *)

open Bsm_prelude
module Core = Bsm_core
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool
module H = Bsm_harness
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire
module Schedule = Bsm_chaos.Schedule
module Mutation = Bsm_chaos.Mutation
module Oracle = Bsm_chaos.Oracle
module Shrink = Bsm_chaos.Shrink
module Repro = Bsm_chaos.Repro
module Chaos_sweep = Bsm_chaos.Chaos_sweep

let party_set = Alcotest.testable Party_set.pp Party_set.equal

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

(* Decisions of a compiled model over a small (round, src, dst) cube, as
   a replayable fingerprint. *)
let decisions ~k model =
  let parties = Party_id.all ~k in
  List.concat_map
    (fun round ->
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst ->
              if Party_id.equal src dst then None
              else
                Some
                  ( round,
                    src,
                    dst,
                    model.Engine.drop ~round ~src ~dst,
                    model.Engine.drop_label ~round ~src ~dst ))
            parties)
        parties)
    (Util.range 0 6)

(* --- schedule construction & compilation -------------------------------- *)

let test_compile_deterministic () =
  let sched =
    Schedule.all
      [
        Schedule.bernoulli ~rate:0.3;
        Schedule.crash (Party_id.left 1) ~at_round:2;
        Schedule.partition ~from_round:1 ~until_round:4
          [ Party_id.right 0 ]
          [ Party_id.left 0; Party_id.left 1 ];
      ]
  in
  let a = decisions ~k:3 (Schedule.compile ~seed:5 sched) in
  let b = decisions ~k:3 (Schedule.compile ~seed:5 sched) in
  Alcotest.(check bool) "same seed, same decisions" true (a = b)

let test_compile_seed_sensitive () =
  let sched = Schedule.bernoulli ~rate:0.5 in
  let a = decisions ~k:3 (Schedule.compile ~seed:1 sched) in
  let b = decisions ~k:3 (Schedule.compile ~seed:2 sched) in
  Alcotest.(check bool) "different seed, different decisions" false (a = b)

let test_crash_window () =
  let p = Party_id.left 0 in
  let model = Schedule.compile ~seed:0 (Schedule.crash p ~at_round:2) in
  let dst = Party_id.right 0 in
  Alcotest.(check bool) "alive before" false (model.Engine.drop ~round:1 ~src:p ~dst);
  Alcotest.(check bool) "dead at crash round" true
    (model.Engine.drop ~round:2 ~src:p ~dst);
  Alcotest.(check bool) "dead forever" true
    (model.Engine.drop ~round:1000 ~src:p ~dst);
  Alcotest.(check bool) "others unaffected" false
    (model.Engine.drop ~round:5 ~src:(Party_id.left 1) ~dst)

let test_partition_symmetric_and_windowed () =
  let a = [ Party_id.left 0 ] and b = [ Party_id.right 0; Party_id.right 1 ] in
  let model =
    Schedule.compile ~seed:0 (Schedule.partition ~from_round:1 ~until_round:3 a b)
  in
  let l0 = Party_id.left 0 and r0 = Party_id.right 0 in
  Alcotest.(check bool) "a->b cut" true (model.Engine.drop ~round:1 ~src:l0 ~dst:r0);
  Alcotest.(check bool) "b->a cut" true (model.Engine.drop ~round:2 ~src:r0 ~dst:l0);
  Alcotest.(check bool) "window end exclusive" false
    (model.Engine.drop ~round:3 ~src:l0 ~dst:r0);
  Alcotest.(check bool) "within a side open" false
    (model.Engine.drop ~round:1 ~src:r0 ~dst:(Party_id.right 1));
  Alcotest.(check bool) "third parties open" false
    (model.Engine.drop ~round:1 ~src:(Party_id.left 1) ~dst:r0)

let test_during_and_restrict () =
  let sched =
    Schedule.during ~from_round:2 ~until_round:4
      (Schedule.restrict_to_side Side.Left (Schedule.blackout ~from_round:0 ~until_round:100))
  in
  let model = Schedule.compile ~seed:0 sched in
  let l0 = Party_id.left 0 and r0 = Party_id.right 0 in
  Alcotest.(check bool) "left send in window cut" true
    (model.Engine.drop ~round:2 ~src:l0 ~dst:r0);
  Alcotest.(check bool) "right send in window open" false
    (model.Engine.drop ~round:2 ~src:r0 ~dst:l0);
  Alcotest.(check bool) "before window open" false
    (model.Engine.drop ~round:1 ~src:l0 ~dst:r0);
  Alcotest.(check bool) "after window open" false
    (model.Engine.drop ~round:4 ~src:l0 ~dst:r0)

let test_send_receive_omission_target () =
  let p = Party_id.right 0 in
  let send = Schedule.compile ~seed:3 (Schedule.send_omission ~rate:1.0 p) in
  let recv = Schedule.compile ~seed:3 (Schedule.receive_omission ~rate:1.0 p) in
  let l0 = Party_id.left 0 in
  Alcotest.(check bool) "send-omit drops p's sends" true
    (send.Engine.drop ~round:0 ~src:p ~dst:l0);
  Alcotest.(check bool) "send-omit spares sends to p" false
    (send.Engine.drop ~round:0 ~src:l0 ~dst:p);
  Alcotest.(check bool) "recv-omit drops sends to p" true
    (recv.Engine.drop ~round:0 ~src:l0 ~dst:p);
  Alcotest.(check bool) "recv-omit spares p's sends" false
    (recv.Engine.drop ~round:0 ~src:p ~dst:l0)

let test_labels_name_the_component () =
  let sched =
    Schedule.union
      (Schedule.crash (Party_id.right 0) ~at_round:1)
      (Schedule.bernoulli ~rate:1.0)
  in
  let model = Schedule.compile ~seed:0 sched in
  (* The first matching component in declaration order labels the drop. *)
  Alcotest.(check (option string))
    "crash label wins for R0" (Some "crash(R0@1)")
    (model.Engine.drop_label ~round:2 ~src:(Party_id.right 0)
       ~dst:(Party_id.left 0));
  Alcotest.(check (option string))
    "bernoulli labels the rest" (Some "drop(100%)")
    (model.Engine.drop_label ~round:2 ~src:(Party_id.left 0)
       ~dst:(Party_id.right 0))

let test_empty_schedules () =
  Alcotest.(check bool) "never empty" true (Schedule.is_empty Schedule.never);
  Alcotest.(check bool) "rate-0 pruned" true
    (Schedule.is_empty (Schedule.bernoulli ~rate:0.));
  Alcotest.(check bool) "empty partition side pruned" true
    (Schedule.is_empty
       (Schedule.partition ~from_round:0 ~until_round:5 [] [ Party_id.left 0 ]));
  Alcotest.(check bool) "contradictory restriction pruned" true
    (Schedule.is_empty
       (Schedule.restrict_to_side Side.Left
          (Schedule.restrict_to_side Side.Right (Schedule.bernoulli ~rate:0.5))));
  Alcotest.(check bool) "empty during pruned" true
    (Schedule.is_empty
       (Schedule.during ~from_round:5 ~until_round:5 (Schedule.bernoulli ~rate:0.5)));
  Alcotest.(check string) "describe none" "none" (Schedule.describe Schedule.never)

let test_invalid_arguments_rejected () =
  let rejects f = Alcotest.(check bool) "rejected" true (
    match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  rejects (fun () -> Schedule.bernoulli ~rate:1.5);
  rejects (fun () -> Schedule.bernoulli ~rate:(-0.1));
  rejects (fun () -> Schedule.send_omission ~rate:2. (Party_id.left 0));
  rejects (fun () -> Schedule.crash (Party_id.left 0) ~at_round:(-1));
  rejects (fun () -> Schedule.blackout ~from_round:3 ~until_round:1);
  rejects (fun () ->
      Schedule.during ~from_round:(-1) ~until_round:2 (Schedule.bernoulli ~rate:0.5))

(* --- in-flight mutation --------------------------------------------------- *)

(* The corrupt hook's verdicts over a (round, src, dst) cube, as a
   replayable fingerprint mirroring [decisions]. *)
let corrupt_decisions ~k model payload =
  let parties = Party_id.all ~k in
  List.concat_map
    (fun round ->
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst ->
              if Party_id.equal src dst then None
              else Some (model.Engine.corrupt ~round ~src ~dst ~prev:None payload))
            parties)
        parties)
    (Util.range 0 6)

let test_mutation_deterministic_and_seeded () =
  let sched =
    Schedule.union
      (Schedule.corrupt ~rate:0.5 ~kind:Mutation.Bit_flip (Party_id.right 0))
      (Schedule.corrupt ~rate:0.5 ~kind:Mutation.Equivocate (Party_id.left 0))
  in
  let payload = "the quick brown fox" in
  let a = corrupt_decisions ~k:3 (Schedule.compile ~seed:9 sched) payload in
  let b = corrupt_decisions ~k:3 (Schedule.compile ~seed:9 sched) payload in
  Alcotest.(check bool) "same seed, same mutations" true (a = b);
  let c = corrupt_decisions ~k:3 (Schedule.compile ~seed:10 sched) payload in
  Alcotest.(check bool) "different seed, different mutations" false (a = c)

let test_corrupt_never_drops () =
  let r0 = Party_id.right 0 in
  let model =
    Schedule.compile ~seed:2 (Schedule.corrupt ~rate:1.0 ~kind:Mutation.Bit_flip r0)
  in
  Alcotest.(check bool) "corruption is not omission" false
    (model.Engine.drop ~round:0 ~src:r0 ~dst:(Party_id.left 0));
  Alcotest.(check bool) "hook fires at rate 1" true
    (model.Engine.corrupt ~round:0 ~src:r0 ~dst:(Party_id.left 0) ~prev:None
       "payload"
    <> None);
  Alcotest.(check (option string))
    "other senders untouched" None
    (Option.map snd
       (model.Engine.corrupt ~round:0 ~src:(Party_id.right 1)
          ~dst:(Party_id.left 0) ~prev:None "payload"))

let test_equivocate_differs_per_recipient () =
  let r0 = Party_id.right 0 in
  let model =
    Schedule.compile ~seed:4 (Schedule.corrupt ~rate:1.0 ~kind:Mutation.Equivocate r0)
  in
  let payload = String.init 16 Char.chr in
  let get dst =
    match model.Engine.corrupt ~round:0 ~src:r0 ~dst ~prev:None payload with
    | Some (bytes, _) -> bytes
    | None -> Alcotest.fail "rate-1.0 equivocation did not fire"
  in
  let to_l0 = get (Party_id.left 0)
  and to_l1 = get (Party_id.left 1) in
  Alcotest.(check bool) "frames mutated" true (to_l0 <> payload && to_l1 <> payload);
  Alcotest.(check bool) "recipients see different frames" true (to_l0 <> to_l1)

let test_schedule_codec_roundtrip () =
  let r0 = Party_id.right 0 in
  let sched =
    Schedule.all
      [
        Schedule.bernoulli ~rate:0.25;
        Schedule.crash (Party_id.left 1) ~at_round:2;
        Schedule.send_omission ~rate:0.5 r0;
        Schedule.receive_omission ~rate:0.75 r0;
        Schedule.partition ~from_round:1 ~until_round:4 [ r0 ]
          [ Party_id.left 0; Party_id.left 1 ];
        Schedule.during ~from_round:0 ~until_round:3
          (Schedule.blackout ~from_round:0 ~until_round:100);
        Schedule.restrict_to_side Side.Left
          (Schedule.corrupt ~rate:0.3 ~kind:Mutation.Forge_sender (Party_id.left 0));
        Schedule.corrupt_state ~rate:0.8 r0 ~at_round:3;
        Schedule.sabotage (Party_id.left 0) ~at_round:5;
      ]
  in
  let bytes = Wire.encode Schedule.codec sched in
  let decoded = Wire.decode_exn Schedule.codec bytes in
  Alcotest.(check bool) "roundtrip" true (decoded = sched);
  (* Canonicality across every atom: re-encoding the decoded term yields
     the same bytes, so repro files are stable digests of the term. *)
  Alcotest.(check string) "canonical re-encoding"
    (Wire.to_hex bytes)
    (Wire.to_hex (Wire.encode Schedule.codec decoded));
  Alcotest.(check bool) "garbage never crashes the schedule decoder" true
    (match Wire.decode Schedule.codec "\x02\x02\x02\x02\x02" with
    | Ok _ | Error _ -> true)

(* --- state corruption ----------------------------------------------------- *)

let test_corrupt_state_never_drops_and_targets () =
  let r0 = Party_id.right 0 in
  let model = Schedule.compile ~seed:7 (Schedule.corrupt_state ~rate:1.0 r0 ~at_round:2) in
  Alcotest.(check bool) "state corruption is not omission" false
    (model.Engine.drop ~round:2 ~src:r0 ~dst:(Party_id.left 0));
  let fires ~round ~party =
    model.Engine.scramble ~round ~party ~cell:0 ~attempt:0 "payload" <> None
  in
  Alcotest.(check bool) "fires in its round at rate 1" true (fires ~round:2 ~party:r0);
  Alcotest.(check bool) "window start exclusive below" false (fires ~round:1 ~party:r0);
  Alcotest.(check bool) "window end exclusive" false (fires ~round:3 ~party:r0);
  Alcotest.(check bool) "other parties untouched" false
    (fires ~round:2 ~party:(Party_id.right 1));
  (* Omission-only schedules must leave the engine's scramble machinery
     physically disabled — that is what keeps [track_prev]-style gating
     (and hence fault-free runs) on the fast path. *)
  let omission = Schedule.compile ~seed:7 (Schedule.bernoulli ~rate:0.5) in
  Alcotest.(check bool) "no scramblers, no hook" true
    (omission.Engine.scramble == Engine.no_scramble)

let test_corrupt_state_deterministic_and_attempt_varied () =
  let r0 = Party_id.right 0 in
  let sched = Schedule.corrupt_state ~rate:1.0 r0 ~at_round:1 in
  let get seed attempt =
    (Schedule.compile ~seed sched).Engine.scramble ~round:1 ~party:r0 ~cell:0
      ~attempt "some canonical state"
  in
  Alcotest.(check bool) "same seed, same bytes" true (get 5 0 = get 5 0);
  Alcotest.(check bool) "different seed, different bytes" false (get 5 0 = get 6 0);
  (* The retry loop must draw fresh candidates: the firing decision
     ignores the attempt, the content hash absorbs it. *)
  Alcotest.(check bool) "attempts still fire" true (get 5 3 <> None);
  Alcotest.(check bool) "attempts vary the candidate" false (get 5 0 = get 5 1)

let test_corrupt_state_window_and_side_composition () =
  let r0 = Party_id.right 0 in
  let atom = Schedule.corrupt_state ~rate:1.0 r0 ~at_round:2 in
  Alcotest.(check bool) "excluding window prunes the atom" true
    (Schedule.is_empty (Schedule.during ~from_round:3 ~until_round:9 atom));
  (* A mismatched side restriction keeps the term (same contract as the
     other party atoms) but the compiled hook never fires and nobody is
     charged. *)
  let mismatched =
    Schedule.compile ~seed:0 (Schedule.restrict_to_side Side.Left atom)
  in
  Alcotest.(check bool) "mismatched side restriction never fires" true
    (mismatched.Engine.scramble ~round:2 ~party:r0 ~cell:0 ~attempt:0 "state"
    = None);
  Alcotest.check party_set "mismatched side restriction charges nobody"
    Party_set.empty
    (Schedule.charged ~k:2 (Schedule.restrict_to_side Side.Left atom));
  let kept = Schedule.during ~from_round:0 ~until_round:3 atom in
  Alcotest.(check bool) "covering window keeps it" false (Schedule.is_empty kept);
  Alcotest.(check bool) "matching side restriction keeps it" false
    (Schedule.is_empty (Schedule.restrict_to_side Side.Right atom));
  let model = Schedule.compile ~seed:0 kept in
  Alcotest.(check bool) "kept atom still fires in its round" true
    (model.Engine.scramble ~round:2 ~party:r0 ~cell:0 ~attempt:0 "state" <> None);
  Alcotest.(check bool) "zero rate prunes" true
    (Schedule.is_empty (Schedule.corrupt_state ~rate:0. r0 ~at_round:2));
  Alcotest.check party_set "corrupt_state charges its party like send-omission"
    (Party_set.singleton r0)
    (Schedule.charged ~k:2 atom)

(* --- budget attribution -------------------------------------------------- *)

let test_charged_attribution () =
  let k = 3 in
  let r0 = Party_id.right 0 in
  let check name expected sched =
    Alcotest.check party_set name expected (Schedule.charged ~k sched)
  in
  check "never" Party_set.empty Schedule.never;
  check "crash" (Party_set.singleton r0) (Schedule.crash r0 ~at_round:1);
  check "send omission" (Party_set.singleton r0)
    (Schedule.send_omission ~rate:0.5 r0);
  check "receive omission" (Party_set.singleton r0)
    (Schedule.receive_omission ~rate:0.5 r0);
  check "bernoulli charges everyone" (Party_set.full ~k)
    (Schedule.bernoulli ~rate:0.1);
  check "restricted bernoulli charges one side"
    (Party_set.of_list (Party_id.side_members Side.Left ~k))
    (Schedule.restrict_to_side Side.Left (Schedule.bernoulli ~rate:0.1));
  check "partition charges the smaller block" (Party_set.singleton r0)
    (Schedule.partition ~from_round:0 ~until_round:5 [ r0 ]
       (Party_id.side_members Side.Left ~k));
  check "restriction filters a mismatched sender atom" Party_set.empty
    (Schedule.restrict_to_side Side.Left (Schedule.crash r0 ~at_round:0));
  check "union accumulates"
    (Party_set.of_list [ r0; Party_id.left 1 ])
    (Schedule.union
       (Schedule.crash r0 ~at_round:1)
       (Schedule.send_omission ~rate:0.2 (Party_id.left 1)))

let test_corrupt_charged_sabotage_not () =
  let r0 = Party_id.right 0 in
  Alcotest.check party_set "corrupt charges its sender like omission"
    (Party_set.singleton r0)
    (Schedule.charged ~k:2 (Schedule.corrupt ~rate:0.3 ~kind:Mutation.Truncate r0));
  Alcotest.check party_set "restriction filters a mismatched corrupt sender"
    Party_set.empty
    (Schedule.charged ~k:2
       (Schedule.restrict_to_side Side.Left
          (Schedule.corrupt ~rate:0.3 ~kind:Mutation.Truncate r0)));
  Alcotest.check party_set "sabotage is deliberately uncharged" Party_set.empty
    (Schedule.charged ~k:2 (Schedule.sabotage (Party_id.left 0) ~at_round:0))

(* --- the oracle across the T-table --------------------------------------- *)

(* The four feasibility mechanisms under test, each with enough slack on
   the right for one omission-faulty right party. *)
let t_settings ~k =
  let third = max 0 ((k - 1) / 3) in
  [
    setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
      ~tl:third ~tr:k;
    setting ~k ~topology:Topology.Fully_connected ~auth:Core.Setting.Authenticated
      ~tl:k ~tr:k;
    setting ~k ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
      ~tl:third ~tr:k;
    setting ~k ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated
      ~tl:third ~tr:k;
  ]

let within_budget_schedules ~k:_ =
  let r0 = Party_id.right 0 in
  [
    Schedule.send_omission ~rate:0.4 r0;
    Schedule.receive_omission ~rate:0.4 r0;
    Schedule.crash r0 ~at_round:1;
  ]

let test_within_budget_omissions_are_ok () =
  (* Theorems 8-9: an omission-faulty party within the corruption budget
     costs nothing — every honest party still achieves bSM. *)
  List.iter
    (fun s ->
      List.iter
        (fun sched ->
          let case = H.Sweep.case ~profile_seed:11 s in
          let r = Oracle.run ~seed:1 ~schedule:sched case in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s within budget"
               case.H.Sweep.label (Schedule.describe sched))
            true r.Oracle.within_budget;
          match r.Oracle.verdict with
          | Oracle.Ok -> ()
          | v ->
            Alcotest.failf "%s under %s: expected ok, got %s"
              case.H.Sweep.label (Schedule.describe sched)
              (Oracle.verdict_to_string v))
        (within_budget_schedules ~k:s.Core.Setting.k))
    (t_settings ~k:2 @ t_settings ~k:4)

let test_over_budget_degrades_without_crash () =
  (* Blanket loss charges the whole roster: over budget wherever tL < k,
     and the run must come back classified, not raise. *)
  List.iter
    (fun s ->
      List.iter
        (fun sched ->
          let case = H.Sweep.case ~profile_seed:7 s in
          let r = Oracle.run ~seed:3 ~schedule:sched case in
          if s.Core.Setting.t_left < s.Core.Setting.k then begin
            Alcotest.(check bool) "over budget" false r.Oracle.within_budget;
            Alcotest.(check bool) "classified as degradation" true
              (r.Oracle.verdict = Oracle.Expected_degradation)
          end)
        [
          Schedule.bernoulli ~rate:0.3;
          Schedule.blackout ~from_round:1 ~until_round:3;
        ])
    (t_settings ~k:2 @ t_settings ~k:4)

let test_oracle_counts_fates () =
  let s = List.hd (t_settings ~k:2) in
  let case = H.Sweep.case ~profile_seed:11 s in
  let sched = Schedule.crash (Party_id.right 0) ~at_round:1 in
  let r = Oracle.run ~seed:1 ~schedule:sched case in
  let m = r.Oracle.metrics in
  let labelled =
    List.fold_left (fun acc (_, n) -> acc + n) 0 m.Engine.messages_dropped_by_label
  in
  Alcotest.(check bool) "some omissions" true (m.Engine.messages_dropped_fault > 0);
  Alcotest.(check int) "every omission labelled" m.Engine.messages_dropped_fault
    labelled;
  Alcotest.(check int) "conservation"
    m.Engine.messages_sent
    (m.Engine.messages_delivered + m.Engine.messages_dropped_topology
   + m.Engine.messages_dropped_fault)

(* --- the convergence oracle ------------------------------------------------ *)

(* Fully-connected/unauthenticated k=2 with spare right budget: the
   general phase-king path, whose parties register their round-local
   state, so a corrupt-state schedule on R0 demonstrably scrambles. *)
let scramble_case () = H.Sweep.case ~profile_seed:11 (List.hd (t_settings ~k:2))

let test_recovery_measured_after_scramble () =
  let schedule = Schedule.corrupt_state ~rate:1.0 (Party_id.right 0) ~at_round:1 in
  let r = Oracle.run ~seed:1 ~schedule (scramble_case ()) in
  let m = r.Oracle.metrics in
  Alcotest.(check bool) "cells were scrambled" true (m.Engine.cells_scrambled > 0);
  Alcotest.(check (option int))
    "first scramble in the schedule's round" (Some 1) m.Engine.first_scramble_round;
  Alcotest.(check bool) "within budget" true r.Oracle.within_budget;
  Alcotest.(check bool) "still ok — the protocol absorbs the scramble" true
    (r.Oracle.verdict = Oracle.Ok);
  (match r.Oracle.recovery with
  | Some (Oracle.Recovered n) ->
    Alcotest.(check bool) (Printf.sprintf "recovered in %d rounds" n) true (n >= 0)
  | other ->
    Alcotest.failf "expected Recovered, got %s"
      (match other with
      | None -> "no recovery verdict"
      | Some rc -> Oracle.recovery_to_string rc));
  (* Scrambles are charged to the component's label like omissions. *)
  Alcotest.(check bool) "scramble label tallied" true
    (List.mem_assoc "corrupt-state(R0@1,100%)" m.Engine.messages_dropped_by_label)

let test_recovery_none_without_scramble () =
  let schedule = Schedule.crash (Party_id.right 0) ~at_round:1 in
  let r = Oracle.run ~seed:1 ~schedule (scramble_case ()) in
  Alcotest.(check bool) "no scramble, no recovery verdict" true
    (r.Oracle.recovery = None);
  Alcotest.(check int) "no cells scrambled" 0 r.Oracle.metrics.Engine.cells_scrambled

let test_recovery_stuck_when_rounds_run_out () =
  (* Starve the run of rounds after the scramble: honest parties are
     proven never to converge, which the oracle must report as Stuck
     rather than a bare termination violation. *)
  let schedule = Schedule.corrupt_state ~rate:1.0 (Party_id.right 0) ~at_round:1 in
  let r = Oracle.run ~max_rounds:2 ~seed:1 ~schedule (scramble_case ()) in
  Alcotest.(check bool) "cells were scrambled first" true
    (r.Oracle.metrics.Engine.cells_scrambled > 0);
  Alcotest.(check bool) "proven stuck" true (r.Oracle.recovery = Some Oracle.Stuck)

let test_recovery_codec_roundtrip () =
  List.iter
    (fun rc ->
      let bytes = Wire.encode Oracle.recovery_codec rc in
      Alcotest.(check bool)
        (Oracle.recovery_to_string rc)
        true
        (Wire.decode_exn Oracle.recovery_codec bytes = rc))
    [ Oracle.Recovered 0; Oracle.Recovered 17; Oracle.Stuck; Oracle.Violated ];
  Alcotest.(check bool) "unknown tag rejected" true
    (match Wire.decode Oracle.recovery_codec "\x09" with
    | Error _ -> true
    | Ok _ -> false)

(* --- shrinker & repros ---------------------------------------------------- *)

(* The injected-violation construction the CLI's --inject-violation uses:
   an uncharged sabotage of L0 (the real bug) buried under three
   admissible decoys. Mirrored here so the CLI path stays covered by
   tier-1 tests. *)
let injected_setting () =
  setting ~k:2 ~topology:Topology.Fully_connected ~auth:Core.Setting.Unauthenticated
    ~tl:0 ~tr:2

let injected_schedule () =
  let l0 = Party_id.left 0
  and r0 = Party_id.right 0
  and r1 = Party_id.right 1 in
  Schedule.all
    [
      Schedule.sabotage l0 ~at_round:0;
      Schedule.send_omission ~rate:0.25 r0;
      Schedule.corrupt ~rate:0.3 ~kind:Mutation.Bit_flip r0;
      Schedule.partition ~from_round:0 ~until_round:6 [ r0 ] [ r1 ];
    ]

let test_shrinker_strips_decoys () =
  let case = H.Sweep.case ~label:"injected" ~profile_seed:202 (injected_setting ()) in
  let schedule = injected_schedule () in
  match Shrink.minimize ~seed:0 ~schedule case with
  | Error msg -> Alcotest.failf "expected a violation to shrink: %s" msg
  | Ok out ->
    Alcotest.(check bool) "shrunk schedule still violates" true
      (out.Shrink.report.Oracle.verdict = Oracle.Violation);
    let before = List.length (Schedule.components schedule) in
    let after = List.length (Schedule.components out.Shrink.shrunk) in
    Alcotest.(check bool)
      (Printf.sprintf "decoys stripped (%d -> %d components)" before after)
      true (after <= 2);
    Alcotest.(check bool) "strictly smaller" true (after < before);
    Alcotest.(check bool) "search was logged" true (out.Shrink.trail <> []);
    Alcotest.(check bool) "attempts counted" true (out.Shrink.attempts > 0)

let test_shrinker_deterministic () =
  let case = H.Sweep.case ~label:"injected" ~profile_seed:202 (injected_setting ()) in
  let schedule = injected_schedule () in
  match
    ( Shrink.minimize ~seed:0 ~schedule case,
      Shrink.minimize ~seed:0 ~schedule case )
  with
  | Ok a, Ok b ->
    Alcotest.(check bool) "same shrunk schedule" true
      (a.Shrink.shrunk = b.Shrink.shrunk);
    Alcotest.(check int) "same attempts" a.Shrink.attempts b.Shrink.attempts
  | _ -> Alcotest.fail "minimize did not find the violation twice"

let test_shrinker_rejects_non_violation () =
  let case = H.Sweep.case ~profile_seed:11 (List.hd (t_settings ~k:2)) in
  let schedule = Schedule.crash (Party_id.right 0) ~at_round:1 in
  match Shrink.minimize ~seed:1 ~schedule case with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a clean run must not shrink"

let test_repro_roundtrip_and_replay () =
  let case = H.Sweep.case ~label:"repro" ~profile_seed:202 (injected_setting ()) in
  let schedule = Schedule.sabotage (Party_id.left 0) ~at_round:4 in
  let report = Oracle.run ~seed:0 ~schedule case in
  Alcotest.(check bool) "the minimal schedule violates" true
    (report.Oracle.verdict = Oracle.Violation);
  match Repro.make ~case ~schedule ~seed:0 report with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    let bytes = Wire.encode Repro.codec t in
    Alcotest.(check bool) "codec roundtrip" true
      (Wire.decode_exn Repro.codec bytes = t);
    let path = Filename.temp_file "bsm-repro" ".repro" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Repro.to_file path t;
        match Repro.of_file path with
        | Error msg -> Alcotest.fail msg
        | Ok t' -> (
          Alcotest.(check bool) "file roundtrip" true (t = t');
          match Repro.check t' with
          | Ok r ->
            Alcotest.(check bool) "replay reproduces the violation" true
              (r.Oracle.verdict = Oracle.Violation)
          | Error msg -> Alcotest.failf "replay diverged: %s" msg))

let test_repro_rejects_scripted_adversary () =
  let case =
    H.Sweep.case ~adversary:(H.Sweep.Scripted []) (injected_setting ())
  in
  let schedule = Schedule.sabotage (Party_id.left 0) ~at_round:0 in
  let report = Oracle.run ~seed:0 ~schedule case in
  match Repro.make ~case ~schedule ~seed:0 report with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scripted adversaries must not serialize"

let test_repro_file_rejects_garbage () =
  let rejects content =
    let path = Filename.temp_file "bsm-repro" ".bad" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content);
        match Repro.of_file path with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "accepted %S" content)
  in
  rejects "";
  rejects "not a repro\nabcdef";
  rejects "bsm-repro 1\nzz-not-hex";
  rejects "bsm-repro 1\nabc";
  (* odd-length hex *)
  rejects "bsm-repro 99\n00";
  rejects "bsm-repro 1\n00"
(* valid hex, malformed payload *)

let test_shrink_and_replay_corrupt_state () =
  (* A violation whose schedule carries a corrupt-state decoy: the
     shrinker must handle the new component (strip it — it is not the
     bug), and a repro whose schedule retains corrupt-state components
     must replay bit-identically, scramble hashes included. *)
  let case = H.Sweep.case ~label:"scrambled" ~profile_seed:202 (injected_setting ()) in
  let schedule =
    Schedule.union
      (injected_schedule ())
      (Schedule.corrupt_state ~rate:0.9 (Party_id.right 0) ~at_round:1)
  in
  (match Shrink.minimize ~seed:0 ~schedule case with
  | Error msg -> Alcotest.failf "expected a violation to shrink: %s" msg
  | Ok out ->
    Alcotest.(check bool) "shrunk schedule still violates" true
      (out.Shrink.report.Oracle.verdict = Oracle.Violation);
    Alcotest.(check bool) "corrupt-state decoy stripped" true
      (List.length (Schedule.components out.Shrink.shrunk)
      < List.length (Schedule.components schedule)));
  let full = Schedule.union
      (Schedule.sabotage (Party_id.left 0) ~at_round:4)
      (Schedule.corrupt_state ~rate:1.0 (Party_id.right 0) ~at_round:1)
  in
  let report = Oracle.run ~seed:0 ~schedule:full case in
  Alcotest.(check bool) "violates with the scramble aboard" true
    (report.Oracle.verdict = Oracle.Violation);
  match Repro.make ~case ~schedule:full ~seed:0 report with
  | Error msg -> Alcotest.fail msg
  | Ok t -> (
    let t = Wire.decode_exn Repro.codec (Wire.encode Repro.codec t) in
    match Repro.check t with
    | Ok r ->
      Alcotest.(check bool) "replay reproduces the scramble counts" true
        (r.Oracle.metrics.Engine.cells_scrambled
        = report.Oracle.metrics.Engine.cells_scrambled)
    | Error msg -> Alcotest.failf "corrupt-state replay diverged: %s" msg)

let test_replay_gate_exit_codes () =
  (* The CLI's exit-code policy: reproducing a Violation is a failing
     state (exit 1), clean reproductions pass, divergence fails. *)
  let case = H.Sweep.case ~label:"gate" ~profile_seed:202 (injected_setting ()) in
  let violating = Oracle.run ~seed:0 ~schedule:(injected_schedule ()) case in
  Alcotest.(check int) "reproduced violation exits 1" 1 (Repro.gate (Ok violating));
  let clean =
    Oracle.run ~seed:1
      ~schedule:(Schedule.crash (Party_id.right 0) ~at_round:1)
      (scramble_case ())
  in
  Alcotest.(check bool) "clean run is ok" true (clean.Oracle.verdict = Oracle.Ok);
  Alcotest.(check int) "clean reproduction exits 0" 0 (Repro.gate (Ok clean));
  Alcotest.(check int) "divergence exits 1" 1 (Repro.gate (Error "diverged"))

(* --- chaos sweeps --------------------------------------------------------- *)

let test_quick_grid_par_equals_seq () =
  let cells = Chaos_sweep.quick_grid () in
  let seq = Chaos_sweep.run_cells cells in
  let par =
    Pool.with_pool ~jobs:4 (fun pool -> Chaos_sweep.run_cells ~pool cells)
  in
  Alcotest.(check bool) "bit-identical" true (seq = par);
  Alcotest.(check string) "same json" (Chaos_sweep.to_json ~jobs:1 seq)
    (Chaos_sweep.to_json ~jobs:1 par)

let test_fused_submit_matches_run_cells () =
  (* The chaos grid submitted into a fused batch (one task per cell in
     the shared graph) must be bit-identical to the barriered run_cells
     path, json included. *)
  let cells = Chaos_sweep.quick_grid () in
  let seq = Chaos_sweep.run_cells cells in
  let fused =
    Pool.with_pool ~jobs:4 (fun pool ->
        let batch = H.Sweep.Fused.create () in
        let handle = Chaos_sweep.submit batch ~table:"chaos" cells in
        let _ = H.Sweep.Fused.drain ~pool batch in
        H.Sweep.Fused.results handle)
  in
  Alcotest.(check bool) "fused == sequential" true (seq = fused);
  Alcotest.(check string) "same json" (Chaos_sweep.to_json ~jobs:1 seq)
    (Chaos_sweep.to_json ~jobs:1 fused)

let test_quick_grid_has_no_violations () =
  let outcomes = Chaos_sweep.run_cells (Chaos_sweep.quick_grid ()) in
  let s = Chaos_sweep.summarize outcomes in
  Alcotest.(check int) "cells" (List.length (Chaos_sweep.quick_grid ())) s.Chaos_sweep.cells;
  Alcotest.(check int) "no violations" 0 s.Chaos_sweep.violated;
  Alcotest.(check bool) "some cells ok" true (s.Chaos_sweep.ok > 0);
  Alcotest.(check bool) "over-budget cells degraded" true (s.Chaos_sweep.degraded > 0);
  Alcotest.(check int) "partition is accounted" s.Chaos_sweep.cells
    (s.Chaos_sweep.ok + s.Chaos_sweep.degraded + s.Chaos_sweep.violated)

let test_json_deterministic () =
  let run () =
    Chaos_sweep.to_json ~jobs:1 (Chaos_sweep.run_cells (Chaos_sweep.quick_grid ()))
  in
  Alcotest.(check string) "same seeds, same bytes" (run ()) (run ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_json_pins_corruption_schema () =
  (* BENCH_chaos rows must carry the corrupted-frame count and fold the
     mutation component's label into dropped_by_label — deterministic
     counts only, so the file stays bit-identical. *)
  let case = H.Sweep.case ~profile_seed:11 (List.hd (t_settings ~k:2)) in
  let schedule = Schedule.corrupt ~rate:1.0 ~kind:Mutation.Bit_flip (Party_id.right 0) in
  let outcomes = Chaos_sweep.run_cells [ Chaos_sweep.cell ~chaos_seed:1 ~schedule case ] in
  let m = (List.hd outcomes).Chaos_sweep.oracle.Oracle.metrics in
  Alcotest.(check bool) "frames were corrupted" true (m.Engine.messages_corrupted > 0);
  Alcotest.(check (list (pair string int)))
    "every corruption tallied under the component label"
    [ "corrupt(R0,bit-flip,100%)", m.Engine.messages_corrupted ]
    m.Engine.messages_dropped_by_label;
  let json = Chaos_sweep.to_json ~jobs:1 outcomes in
  Alcotest.(check bool) "corrupted_frames in json" true
    (contains json
       ~sub:(Printf.sprintf "\"corrupted_frames\": %d" m.Engine.messages_corrupted));
  Alcotest.(check bool) "mutation label in json" true
    (contains json ~sub:"\"corrupt(R0,bit-flip,100%)\"")

let test_mutation_sweep_par_equals_seq () =
  (* Mutation schedules go through the same seq==par bit-identity bar as
     the omission vocabulary: the corrupt hook must not depend on
     evaluation order or domain count. *)
  let cases = List.map (fun s -> H.Sweep.case ~profile_seed:11 s) (t_settings ~k:2) in
  let r0 = Party_id.right 0 in
  let schedules =
    List.map (fun kind -> Schedule.corrupt ~rate:0.4 ~kind r0) Mutation.all_kinds
  in
  let cells = Chaos_sweep.grid ~cases ~schedules ~seeds:[ 1; 2 ] in
  let seq = Chaos_sweep.run_cells cells in
  let par = Pool.with_pool ~jobs:4 (fun pool -> Chaos_sweep.run_cells ~pool cells) in
  Alcotest.(check bool) "bit-identical" true (seq = par);
  Alcotest.(check string) "same json" (Chaos_sweep.to_json ~jobs:1 seq)
    (Chaos_sweep.to_json ~jobs:1 par)

let test_state_corruption_sweep_par_equals_seq () =
  (* The recovery grid's bar: corrupt-state schedules through the pool
     must make identical scramble decisions (and hence identical
     recovery verdicts) in any evaluation order, json included. *)
  let cases = List.map (fun s -> H.Sweep.case ~profile_seed:11 s) (t_settings ~k:2) in
  let r0 = Party_id.right 0 in
  let schedules =
    [
      Schedule.corrupt_state ~rate:1.0 r0 ~at_round:1;
      Schedule.corrupt_state ~rate:0.6 r0 ~at_round:2;
      Schedule.union
        (Schedule.send_omission ~rate:0.3 r0)
        (Schedule.corrupt_state ~rate:0.8 r0 ~at_round:1);
    ]
  in
  let cells = Chaos_sweep.grid ~cases ~schedules ~seeds:[ 1; 2 ] in
  let seq = Chaos_sweep.run_cells cells in
  let par = Pool.with_pool ~jobs:4 (fun pool -> Chaos_sweep.run_cells ~pool cells) in
  Alcotest.(check bool) "bit-identical" true (seq = par);
  Alcotest.(check string) "same json" (Chaos_sweep.to_json ~jobs:1 seq)
    (Chaos_sweep.to_json ~jobs:1 par);
  (* The grid must have exercised the oracle: at least one cell recovered. *)
  Alcotest.(check bool) "some cell recovered" true
    (List.exists
       (fun o ->
         match o.Chaos_sweep.oracle.Oracle.recovery with
         | Some (Oracle.Recovered _) -> true
         | _ -> false)
       seq)

let test_recovery_grid_rows () =
  let cases = [ scramble_case () ] in
  let r0 = Party_id.right 0 in
  let schedules =
    [
      Schedule.crash r0 ~at_round:1;
      Schedule.corrupt_state ~rate:1.0 r0 ~at_round:1;
    ]
  in
  let outcomes =
    Chaos_sweep.run_cells (Chaos_sweep.grid ~cases ~schedules ~seeds:[ 1 ])
  in
  let rows = Chaos_sweep.recovery_grid outcomes in
  (* Only the scrambling schedule earns a row; the crash group has no
     recovery story to tell. *)
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check string) "the corrupt-state group" "corrupt-state(R0@1,100%)"
    row.Chaos_sweep.rg_schedule;
  Alcotest.(check int) "seed" 1 row.Chaos_sweep.rg_seed;
  Alcotest.(check int) "cells" 1 row.Chaos_sweep.rg_cells;
  Alcotest.(check int) "recovered" 1 row.Chaos_sweep.rg_recovered;
  Alcotest.(check int) "stuck" 0 row.Chaos_sweep.rg_stuck;
  Alcotest.(check bool) "mean == max for one cell" true
    (Float.equal row.Chaos_sweep.rg_mean_rounds
       (float_of_int row.Chaos_sweep.rg_max_rounds));
  let json = Chaos_sweep.to_json ~jobs:1 outcomes in
  Alcotest.(check bool) "recovery_row marker in json" true
    (contains json ~sub:"{\"recovery_row\": \"corrupt-state(R0@1,100%)#seed1\"");
  Alcotest.(check bool) "per-run recovery field in json" true
    (contains json ~sub:"\"recovery\": \"recovered:")

let test_grid_shape () =
  let cases =
    [ H.Sweep.case (List.hd (t_settings ~k:2)); H.Sweep.case (List.nth (t_settings ~k:2) 1) ]
  in
  let schedules = [ Schedule.never; Schedule.bernoulli ~rate:0.5 ] in
  let cells = Chaos_sweep.grid ~cases ~schedules ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "cross product" 12 (List.length cells);
  (* cases outermost, seeds innermost *)
  let first = List.hd cells in
  Alcotest.(check int) "first seed" 1 first.Chaos_sweep.chaos_seed;
  let second = List.nth cells 1 in
  Alcotest.(check int) "seeds vary fastest" 2 second.Chaos_sweep.chaos_seed

let () =
  Alcotest.run "chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "compile deterministic" `Quick test_compile_deterministic;
          Alcotest.test_case "seed sensitive" `Quick test_compile_seed_sensitive;
          Alcotest.test_case "crash window" `Quick test_crash_window;
          Alcotest.test_case "partition symmetric, windowed" `Quick
            test_partition_symmetric_and_windowed;
          Alcotest.test_case "during + restrict" `Quick test_during_and_restrict;
          Alcotest.test_case "send vs receive omission" `Quick
            test_send_receive_omission_target;
          Alcotest.test_case "labels name the component" `Quick
            test_labels_name_the_component;
          Alcotest.test_case "empty schedules" `Quick test_empty_schedules;
          Alcotest.test_case "invalid arguments rejected" `Quick
            test_invalid_arguments_rejected;
          Alcotest.test_case "charged attribution" `Quick test_charged_attribution;
          Alcotest.test_case "corrupt charged, sabotage not" `Quick
            test_corrupt_charged_sabotage_not;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "deterministic in the seed" `Quick
            test_mutation_deterministic_and_seeded;
          Alcotest.test_case "corrupt never drops" `Quick test_corrupt_never_drops;
          Alcotest.test_case "equivocate differs per recipient" `Quick
            test_equivocate_differs_per_recipient;
          Alcotest.test_case "schedule codec roundtrip" `Quick
            test_schedule_codec_roundtrip;
        ] );
      ( "state-corruption",
        [
          Alcotest.test_case "corrupt_state never drops, targets its cell" `Quick
            test_corrupt_state_never_drops_and_targets;
          Alcotest.test_case "deterministic, attempt-varied" `Quick
            test_corrupt_state_deterministic_and_attempt_varied;
          Alcotest.test_case "window and side composition" `Quick
            test_corrupt_state_window_and_side_composition;
          Alcotest.test_case "recovery measured after scramble" `Quick
            test_recovery_measured_after_scramble;
          Alcotest.test_case "no scramble, no recovery verdict" `Quick
            test_recovery_none_without_scramble;
          Alcotest.test_case "stuck when rounds run out" `Quick
            test_recovery_stuck_when_rounds_run_out;
          Alcotest.test_case "recovery codec roundtrip" `Quick
            test_recovery_codec_roundtrip;
        ] );
      ( "shrink-repro",
        [
          Alcotest.test_case "shrinker strips decoys" `Quick
            test_shrinker_strips_decoys;
          Alcotest.test_case "shrinker deterministic" `Quick
            test_shrinker_deterministic;
          Alcotest.test_case "clean runs don't shrink" `Quick
            test_shrinker_rejects_non_violation;
          Alcotest.test_case "repro roundtrip and replay" `Quick
            test_repro_roundtrip_and_replay;
          Alcotest.test_case "scripted adversary rejected" `Quick
            test_repro_rejects_scripted_adversary;
          Alcotest.test_case "garbage repro files rejected" `Quick
            test_repro_file_rejects_garbage;
          Alcotest.test_case "corrupt-state shrink and replay" `Quick
            test_shrink_and_replay_corrupt_state;
          Alcotest.test_case "replay gate exit codes" `Quick
            test_replay_gate_exit_codes;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "within-budget omissions ok (Thms 8-9)" `Quick
            test_within_budget_omissions_are_ok;
          Alcotest.test_case "over budget degrades, no crash" `Quick
            test_over_budget_degrades_without_crash;
          Alcotest.test_case "per-fate counts" `Quick test_oracle_counts_fates;
        ] );
      ( "chaos-sweep",
        [
          Alcotest.test_case "par equals seq" `Quick test_quick_grid_par_equals_seq;
          Alcotest.test_case "fused submit equals seq" `Quick
            test_fused_submit_matches_run_cells;
          Alcotest.test_case "quick grid clean" `Quick
            test_quick_grid_has_no_violations;
          Alcotest.test_case "json deterministic" `Quick test_json_deterministic;
          Alcotest.test_case "json pins corruption schema" `Quick
            test_json_pins_corruption_schema;
          Alcotest.test_case "mutation sweep par equals seq" `Quick
            test_mutation_sweep_par_equals_seq;
          Alcotest.test_case "state-corruption sweep par equals seq" `Quick
            test_state_corruption_sweep_par_equals_seq;
          Alcotest.test_case "recovery grid rows" `Quick test_recovery_grid_rows;
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
        ] );
    ]
