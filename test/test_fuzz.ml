(* The decoder-fuzz corpus as a tier-1 test: every registered codec fed
   mutated encodings must round-trip, reinterpret, or raise
   Wire.Malformed — never crash. The CLI's `bsm fuzz` and `make
   fuzz-quick` run the same corpus with a bigger budget. *)

module Fuzz = Bsm_wire.Fuzz

let corpus () = Bsm_chaos.Codec_corpus.entries ()

let test_corpus_never_crashes () =
  let stats = Fuzz.run ~seed:7 ~cases:200 (corpus ()) in
  List.iter
    (fun (s : Fuzz.stats) ->
      match s.Fuzz.first_failure with
      | Some failure -> Alcotest.failf "%s: %s" s.Fuzz.name failure
      | None -> Alcotest.(check int) (s.Fuzz.name ^ " crashes") 0 s.Fuzz.crashed)
    stats;
  Alcotest.(check bool) "corpus is non-trivial" true (List.length stats >= 15)

let test_clean_roundtrips_always_pass () =
  (* Half of each entry's cases are unmutated encodings; every one must
     come back Roundtrip, so per entry roundtrip >= cases given. *)
  let cases = 100 in
  let stats = Fuzz.run ~seed:3 ~cases (corpus ()) in
  List.iter
    (fun (s : Fuzz.stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d roundtrips >= %d clean cases" s.Fuzz.name
           s.Fuzz.roundtrip cases)
        true
        (s.Fuzz.roundtrip >= cases))
    stats

let test_mutations_are_exercised () =
  (* The mutator must actually perturb decoders: across the corpus some
     mutated frames get rejected and some decode to different values. *)
  let stats = Fuzz.run ~seed:7 ~cases:200 (corpus ()) in
  Alcotest.(check bool) "some rejections" true
    (List.exists (fun (s : Fuzz.stats) -> s.Fuzz.rejected > 0) stats);
  Alcotest.(check bool) "some reinterpretations" true
    (List.exists (fun (s : Fuzz.stats) -> s.Fuzz.reinterpreted > 0) stats)

let test_deterministic_in_the_seed () =
  let a = Fuzz.run ~seed:7 ~cases:50 (corpus ()) in
  let b = Fuzz.run ~seed:7 ~cases:50 (corpus ()) in
  Alcotest.(check bool) "same seed, same stats" true (a = b);
  let c = Fuzz.run ~seed:8 ~cases:50 (corpus ()) in
  Alcotest.(check bool) "different seed, different stats" false (a = c)

let () =
  Alcotest.run "fuzz"
    [
      ( "corpus",
        [
          Alcotest.test_case "never crashes" `Quick test_corpus_never_crashes;
          Alcotest.test_case "clean roundtrips pass" `Quick
            test_clean_roundtrips_always_pass;
          Alcotest.test_case "mutations exercised" `Quick
            test_mutations_are_exercised;
          Alcotest.test_case "deterministic in the seed" `Quick
            test_deterministic_in_the_seed;
        ] );
    ]
