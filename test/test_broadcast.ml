(* Tests for the broadcast/agreement substrate: adversary structures,
   (generalized) phase king, the omission-tolerant Pi_BA / Pi_BB pair, and
   Dolev-Strong — each under honest, crashing, silent, equivocating and
   noise-generating byzantine parties. *)

open Bsm_prelude
module Engine = Bsm_runtime.Engine
module Net = Bsm_runtime.Net
module B = Bsm_broadcast
module Crypto = Bsm_crypto.Crypto
module Wire = Bsm_wire.Wire

(* --- adversary structures ----------------------------------------------- *)

let pset l = Party_set.of_list l

let test_possibly_corrupt_threshold () =
  let s = B.Adversary_structure.Threshold 2 in
  Alcotest.(check bool) "size 2 ok" true
    (B.Adversary_structure.possibly_corrupt s (pset [ Party_id.left 0; Party_id.right 1 ]));
  Alcotest.(check bool) "size 3 not" false
    (B.Adversary_structure.possibly_corrupt s
       (pset [ Party_id.left 0; Party_id.left 1; Party_id.right 1 ]))

let test_possibly_corrupt_two_sided () =
  let s = B.Adversary_structure.Two_sided { t_left = 1; t_right = 2 } in
  Alcotest.(check bool) "1L+2R ok" true
    (B.Adversary_structure.possibly_corrupt s
       (pset [ Party_id.left 0; Party_id.right 0; Party_id.right 1 ]));
  Alcotest.(check bool) "2L not" false
    (B.Adversary_structure.possibly_corrupt s (pset [ Party_id.left 0; Party_id.left 1 ]))

let test_q3_two_sided_matches_lemma4 () =
  (* Lemma 4: Q3 for the product structure over the full roster holds iff
     t_L < k/3 or t_R < k/3. Exhaustive over small (k, t_L, t_R). *)
  for k = 1 to 9 do
    let participants = Party_id.all ~k in
    for t_left = 0 to k do
      for t_right = 0 to k do
        let s = B.Adversary_structure.Two_sided { t_left; t_right } in
        let expected = 3 * t_left < k || 3 * t_right < k in
        if B.Adversary_structure.q3 s ~participants <> expected then
          Alcotest.failf "q3 mismatch at k=%d tL=%d tR=%d" k t_left t_right
      done
    done
  done

let test_q3_explicit_agrees_with_two_sided () =
  (* Cross-check the explicit-structure cover search against the closed
     form, by materializing Z* for small instances. *)
  let k = 3 in
  let participants = Party_id.all ~k in
  let lefts = Party_id.side_members Side.Left ~k in
  let rights = Party_id.side_members Side.Right ~k in
  let subsets_of_size n pool =
    List.filter (fun s -> Party_set.cardinal s = n) (Party_set.power_set pool)
  in
  for t_left = 0 to k do
    for t_right = 0 to k do
      let maximal =
        List.concat_map
          (fun sl ->
            List.map (fun sr -> Party_set.union sl sr) (subsets_of_size t_right rights))
          (subsets_of_size t_left lefts)
      in
      let explicit = B.Adversary_structure.Explicit maximal in
      let two_sided = B.Adversary_structure.Two_sided { t_left; t_right } in
      if
        B.Adversary_structure.q3 explicit ~participants
        <> B.Adversary_structure.q3 two_sided ~participants
      then Alcotest.failf "explicit/two-sided q3 disagree at tL=%d tR=%d" t_left t_right
    done
  done

let test_king_sequence_not_corruptible () =
  let check s participants =
    let kings = B.Adversary_structure.king_sequence s ~participants in
    Alcotest.(check bool) "kings not corruptible" false
      (B.Adversary_structure.possibly_corrupt s (pset kings));
    List.iter
      (fun king ->
        Alcotest.(check bool) "king is participant" true (List.mem king participants))
      kings
  in
  check (B.Adversary_structure.Threshold 2) (Party_id.side_members Side.Left ~k:7);
  check (B.Adversary_structure.Two_sided { t_left = 1; t_right = 3 }) (Party_id.all ~k:4);
  check (B.Adversary_structure.Two_sided { t_left = 4; t_right = 1 }) (Party_id.all ~k:4)

let test_king_sequence_picks_cheap_side () =
  let s = B.Adversary_structure.Two_sided { t_left = 3; t_right = 1 } in
  let kings = B.Adversary_structure.king_sequence s ~participants:(Party_id.all ~k:4) in
  Alcotest.(check int) "t_R+1 kings" 2 (List.length kings);
  List.iter
    (fun king ->
      Alcotest.(check bool) "from right side" true
        (Side.equal (Party_id.side king) Side.Right))
    kings

(* --- helpers for protocol runs ------------------------------------------ *)

let opt_string = Wire.option Wire.string

(* Run a protocol among all 2k parties, fully connected. [byzantine] maps a
   party to Some program; honest parties run [honest]. Returns the engine
   result. *)
let run_protocol ?faults ~k ~honest ~byzantine () =
  let cfg =
    Engine.config ?faults ~k
      ~link:(Engine.Of_topology Bsm_topology.Topology.Fully_connected) ()
  in
  Engine.run cfg ~programs:(fun p ->
      match byzantine p with
      | Some program -> program
      | None -> honest p)

let honest_outputs res honest_parties =
  List.filter_map
    (fun p ->
      let r = Engine.find_result res p in
      match r.Engine.status with
      | Engine.Terminated -> Some (p, r.Engine.out)
      | Engine.Out_of_rounds | Engine.Crashed _ ->
        Alcotest.failf "honest party %s did not terminate cleanly" (Party_id.to_string p))
    honest_parties

(* --- phase king (threshold structure, one side) -------------------------- *)

let pk_params ~k ~t =
  B.Phase_king.params
    ~structure:(B.Adversary_structure.Threshold t)
    ~participants:(Party_id.side_members Side.Left ~k)

let pk_honest params inputs p (env : Engine.env) =
  let machine = B.Phase_king.make params ~self:p ~input:(inputs p) in
  let out = B.Machine.run (Net.direct env) machine in
  env.Engine.output out

let left_parties ~k = Party_id.side_members Side.Left ~k

let check_agreement ~what outputs =
  match outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | (_, first) :: rest ->
    List.iter
      (fun (p, out) ->
        if out <> first then
          Alcotest.failf "%s: %s disagrees" what (Party_id.to_string p))
      rest;
    first

let test_phase_king_all_honest_validity () =
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  let inputs _ = "v" in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then pk_honest params inputs p env)
      ~byzantine:(fun _ -> None)
      ()
  in
  let outs = honest_outputs res (left_parties ~k) in
  let agreed = check_agreement ~what:"validity" outs in
  Alcotest.(check (option string)) "output is the common input" (Some "v") agreed

(* A byzantine phase-king participant that keeps sending personalized
   (split-brain) Value/Propose/King messages every round. *)
let pk_split_brain values (env : Engine.env) =
  let payload_for i phase =
    let v = List.nth values (i mod List.length values) in
    let msg =
      match phase with
      | 0 -> B.Phase_king.Msg.Value v
      | 1 -> B.Phase_king.Msg.Propose v
      | _ -> B.Phase_king.Msg.King v
    in
    Wire.encode B.Phase_king.Msg.codec msg
  in
  let targets = List.filter (fun p -> not (Party_id.equal p env.Engine.self)) (Party_id.all ~k:env.Engine.k) in
  for round = 0 to 40 do
    List.iteri (fun i dst -> env.Engine.send dst (payload_for (i + round) (round mod 3))) targets;
    ignore (env.Engine.next_round ())
  done

let pk_strategies ~k =
  [
    "silent", B.Strategies.silent;
    "crash", B.Strategies.crash_at ~round:2 ~honest:(fun env -> pk_split_brain [ "a" ] env);
    "noise", B.Strategies.noise ~seed:42 ~rounds:30 ~burst:6 ~targets:(left_parties ~k);
    "split-brain", pk_split_brain [ "a"; "b"; "zzz" ];
  ]

let test_phase_king_agreement_under_byzantine () =
  (* k=4 parties on L, t=1: every byzantine strategy, across several input
     splits, must preserve agreement among the 3 honest parties — and
     validity when the honest inputs are unanimous. *)
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  let input_splits =
    [ (fun _ -> "v"); (fun p -> if Party_id.index p mod 2 = 0 then "a" else "b") ]
  in
  List.iter
    (fun (name, strategy) ->
      List.iter
        (fun inputs ->
          let bad = Party_id.left 3 in
          let res =
            run_protocol ~k
              ~honest:(fun p env ->
                if Side.equal (Party_id.side p) Side.Left then
                  pk_honest params inputs p env)
              ~byzantine:(fun p -> if Party_id.equal p bad then Some strategy else None)
              ()
          in
          let honest = List.filter (fun p -> not (Party_id.equal p bad)) (left_parties ~k) in
          let outs = honest_outputs res honest in
          let agreed = check_agreement ~what:name outs in
          let unanimous =
            List.sort_uniq String.compare (List.map inputs honest) |> List.length = 1
          in
          if unanimous then
            Alcotest.(check (option string))
              (name ^ ": validity") (Some (inputs (List.hd honest))) agreed)
        input_splits)
    (pk_strategies ~k)

let test_phase_king_two_sided_structure () =
  (* The general-adversary case that motivates the generalization: all 2k
     parties participate, the whole of R plus one L party are byzantine
     (t_L = 1 < k/3 = 4/3 fails... use k = 4, t_L = 1, 3·1 < 4 ✓, t_R = 4).
     Standard threshold BA would need t < n/3 = 8/3 but we have 5 byzantine
     parties. Agreement among the 3 honest L parties must hold. *)
  let k = 4 in
  let structure = B.Adversary_structure.Two_sided { t_left = 1; t_right = 4 } in
  let params = B.Phase_king.params ~structure ~participants:(Party_id.all ~k) in
  let bad_left = Party_id.left 1 in
  let byzantine p =
    if Side.equal (Party_id.side p) Side.Right then Some (pk_split_brain [ "x"; "y" ])
    else if Party_id.equal p bad_left then Some (pk_split_brain [ "y"; "zz" ])
    else None
  in
  let inputs p = if Party_id.index p = 0 then "a" else "b" in
  let res =
    run_protocol ~k
      ~honest:(fun p env -> pk_honest params inputs p env)
      ~byzantine ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p bad_left)) (left_parties ~k) in
  ignore (check_agreement ~what:"two-sided structure" (honest_outputs res honest))

let test_phase_king_round_complexity () =
  (* Δ_King = 3(t+1)·Δ: the engine's round counter must match the paper's
     formula exactly. *)
  List.iter
    (fun (k, t) ->
      let params = pk_params ~k ~t in
      let res =
        run_protocol ~k
          ~honest:(fun p env ->
            if Side.equal (Party_id.side p) Side.Left then
              pk_honest params (fun _ -> "v") p env)
          ~byzantine:(fun _ -> None)
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "rounds k=%d t=%d" k t)
        (3 * (t + 1))
        res.Engine.metrics.rounds_used)
    [ 4, 1; 7, 2; 10, 3 ]

(* --- Pi_BA ---------------------------------------------------------------- *)

let ba_honest params inputs p (env : Engine.env) =
  let machine = B.Pi_ba.make params ~self:p ~input:(inputs p) in
  let out = B.Machine.run (Net.direct env) machine in
  env.Engine.output (Wire.encode opt_string out)

let decode_opt out =
  match out with
  | None -> Alcotest.fail "missing output payload"
  | Some payload -> Wire.decode_exn opt_string payload

let test_pi_ba_no_omissions_is_ba () =
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  let bad = Party_id.left 2 in
  List.iter
    (fun (name, strategy) ->
      let res =
        run_protocol ~k
          ~honest:(fun p env ->
            if Side.equal (Party_id.side p) Side.Left then
              ba_honest params (fun _ -> "agreed") p env)
          ~byzantine:(fun p -> if Party_id.equal p bad then Some strategy else None)
          ()
      in
      let honest = List.filter (fun p -> not (Party_id.equal p bad)) (left_parties ~k) in
      List.iter
        (fun (_, out) ->
          Alcotest.(check (option string))
            (name ^ ": validity incl. echo round")
            (Some "agreed") (decode_opt out))
        (honest_outputs res honest))
    (pk_strategies ~k)

let test_pi_ba_weak_agreement_under_omissions () =
  (* Random omission patterns (all parties honest): no two honest parties
     may output distinct Some values, and everyone must terminate on time. *)
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  for seed = 1 to 60 do
    let rng = Rng.make seed in
    let faults =
      Engine.fault_model (fun ~round:_ ~src:_ ~dst:_ -> Rng.int rng 100 < 40)
    in
    let res =
      run_protocol ~k ~faults
        ~honest:(fun p env ->
          if Side.equal (Party_id.side p) Side.Left then
            ba_honest params (fun p -> if Party_id.index p < 2 then "a" else "b") p env)
        ~byzantine:(fun _ -> None)
        ()
    in
    let outs = honest_outputs res (left_parties ~k) in
    let some_values =
      List.sort_uniq String.compare
        (List.filter_map (fun (_, out) -> decode_opt out) outs)
    in
    if List.length some_values > 1 then
      Alcotest.failf "weak agreement violated at seed %d" seed;
    (* Termination within Δ_BA = 3(t+1) + 1 rounds. *)
    Alcotest.(check bool) "on time" true (res.Engine.metrics.rounds_used <= 3 * 2 + 1)
  done

(* --- Pi_BB ---------------------------------------------------------------- *)

let bb_honest params ~sender inputs p (env : Engine.env) =
  let machine =
    B.Pi_bb.make params ~self:p ~sender ~input:(inputs p) ~default:"default"
  in
  let out = B.Machine.run (Net.direct env) machine in
  env.Engine.output (Wire.encode opt_string out)

let test_pi_bb_honest_sender_validity () =
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  let sender = Party_id.left 0 in
  let bad = Party_id.left 3 in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          bb_honest params ~sender (fun _ -> "the-value") p env)
      ~byzantine:(fun p ->
        if Party_id.equal p bad then Some (pk_split_brain [ "x"; "y" ]) else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p bad)) (left_parties ~k) in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (option string)) "sender's value" (Some "the-value")
        (decode_opt out))
    (honest_outputs res honest)

let test_pi_bb_byzantine_sender_agreement () =
  (* An equivocating sender: honest parties must still agree (on anything,
     possibly the default). *)
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  let sender = Party_id.left 0 in
  let equivocating (env : Engine.env) =
    List.iter
      (fun p ->
        let v = if Party_id.index p mod 2 = 0 then "one" else "two" in
        let payload = Wire.encode B.Phase_king.Msg.codec (B.Phase_king.Msg.Sender v) in
        if not (Party_id.equal p env.Engine.self) then env.Engine.send p payload)
      (left_parties ~k);
    (* keep disrupting the BA phase *)
    pk_split_brain [ "one"; "two" ] env
  in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          bb_honest params ~sender (fun _ -> "ignored") p env)
      ~byzantine:(fun p -> if Party_id.equal p sender then Some equivocating else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p sender)) (left_parties ~k) in
  ignore (check_agreement ~what:"byzantine sender" (honest_outputs res honest))

let test_pi_bb_silent_sender_default () =
  let k = 4 in
  let params = pk_params ~k ~t:1 in
  let sender = Party_id.left 0 in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          bb_honest params ~sender (fun _ -> "ignored") p env)
      ~byzantine:(fun p -> if Party_id.equal p sender then Some B.Strategies.silent else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p sender)) (left_parties ~k) in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (option string)) "default adopted" (Some "default") (decode_opt out))
    (honest_outputs res honest)

(* --- Dolev-Strong ---------------------------------------------------------- *)

let ds_setup ~k ~seed = Crypto.Pki.setup ~k ~seed

let ds_honest params pki ~sender inputs p (env : Engine.env) =
  let machine =
    B.Dolev_strong.make params ~signer:(Crypto.Pki.signer pki p) ~sender
      ~input:(inputs p) ~default:"default"
  in
  env.Engine.output (B.Machine.run (Net.direct env) machine)

let test_dolev_strong_honest_sender () =
  (* t = n-1 = 7: tolerate all-but-one corruption. Here everyone honest. *)
  let k = 4 in
  let pki = ds_setup ~k ~seed:1 in
  let participants = Party_id.all ~k in
  let params =
    { B.Dolev_strong.participants; t = 2 * k - 1; verifier = Crypto.Pki.verifier pki }
  in
  let sender = Party_id.right 2 in
  let res =
    run_protocol ~k
      ~honest:(fun p env -> ds_honest params pki ~sender (fun _ -> "payload") p env)
      ~byzantine:(fun _ -> None)
      ()
  in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (option string)) "validity" (Some "payload") out)
    (honest_outputs res participants);
  Alcotest.(check int) "t+1 rounds" (2 * k) res.Engine.metrics.rounds_used

let test_dolev_strong_equivocating_sender () =
  (* The sender signs two values and sends each to half the parties; with
     byzantine relays colluding (relaying only to a subset), honest parties
     must still agree. *)
  let k = 3 in
  let pki = ds_setup ~k ~seed:2 in
  let participants = Party_id.all ~k in
  let params =
    { B.Dolev_strong.participants; t = 2; verifier = Crypto.Pki.verifier pki }
  in
  let sender = Party_id.left 0 in
  let helper = Party_id.left 1 in
  let equivocator (env : Engine.env) =
    let signer = Crypto.Pki.signer pki sender in
    let chain v = B.Dolev_strong.Chain.start signer v in
    let payload v = Wire.encode B.Dolev_strong.Chain.codec (chain v) in
    (* "one" only to R0, "two" only to R1; nothing to others. *)
    env.Engine.send (Party_id.right 0) (payload "one");
    env.Engine.send (Party_id.right 1) (payload "two")
  in
  let delayed_helper (env : Engine.env) =
    (* Byzantine helper: holds the sender's signature on a third value and
       releases it only in the final round to one party — the classic
       attack that the t+1-round rule defeats: a chain of length t+1 then
       carries an honest signer who already relayed. Here the helper signs
       onto "one"'s chain and sends it late to R2 only. *)
    let sender_signer = Crypto.Pki.signer pki sender in
    let my_signer = Crypto.Pki.signer pki helper in
    let chain = B.Dolev_strong.Chain.start sender_signer "three" in
    let chain = B.Dolev_strong.Chain.sign_onto my_signer chain in
    ignore (env.Engine.next_round ());
    (* round 2: chain of length 2 = current round: accepted by R2 *)
    env.Engine.send (Party_id.right 2) (Wire.encode B.Dolev_strong.Chain.codec chain)
  in
  let res =
    run_protocol ~k
      ~honest:(fun p env -> ds_honest params pki ~sender (fun _ -> "ignored") p env)
      ~byzantine:(fun p ->
        if Party_id.equal p sender then Some equivocator
        else if Party_id.equal p helper then Some delayed_helper
        else None)
      ()
  in
  let honest =
    List.filter
      (fun p -> not (Party_id.equal p sender || Party_id.equal p helper))
      participants
  in
  ignore (check_agreement ~what:"equivocating sender" (honest_outputs res honest))

let test_dolev_strong_forgery_impossible () =
  (* A byzantine relay fabricates a chain for a value the sender never
     signed, using its own signature twice / wrong signers: honest parties
     must ignore it and output the honest sender's value. *)
  let k = 3 in
  let pki = ds_setup ~k ~seed:3 in
  let participants = Party_id.all ~k in
  let params =
    { B.Dolev_strong.participants; t = 2; verifier = Crypto.Pki.verifier pki }
  in
  let sender = Party_id.left 0 in
  let forger = Party_id.left 1 in
  let forging (env : Engine.env) =
    let my_signer = Crypto.Pki.signer pki forger in
    (* Chain that pretends to originate from the sender but is signed by
       the forger. *)
    let fake =
      {
        B.Dolev_strong.Chain.value = "forged";
        links =
          [
            ( sender,
              Crypto.Signer.sign my_signer "whatever" );
          ];
      }
    in
    List.iter
      (fun p ->
        if not (Party_id.equal p env.Engine.self) then
          env.Engine.send p (Wire.encode B.Dolev_strong.Chain.codec fake))
      participants;
    ignore (env.Engine.next_round ())
  in
  let res =
    run_protocol ~k
      ~honest:(fun p env -> ds_honest params pki ~sender (fun _ -> "real") p env)
      ~byzantine:(fun p -> if Party_id.equal p forger then Some forging else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p forger)) participants in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (option string)) "forgery rejected" (Some "real") out)
    (honest_outputs res honest)

let test_dolev_strong_silent_sender () =
  let k = 2 in
  let pki = ds_setup ~k ~seed:4 in
  let participants = Party_id.all ~k in
  let params =
    { B.Dolev_strong.participants; t = 1; verifier = Crypto.Pki.verifier pki }
  in
  let sender = Party_id.left 0 in
  let res =
    run_protocol ~k
      ~honest:(fun p env -> ds_honest params pki ~sender (fun _ -> "ignored") p env)
      ~byzantine:(fun p -> if Party_id.equal p sender then Some B.Strategies.silent else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p sender)) participants in
  List.iter
    (fun (_, out) -> Alcotest.(check (option string)) "default" (Some "default") out)
    (honest_outputs res honest)

(* --- additional coverage ---------------------------------------------------- *)

let test_phase_king_explicit_structure () =
  (* The same instance expressed as an Explicit structure (greedy king
     sequence, subset-based predicates) must still achieve agreement. *)
  let k = 4 in
  let participants = left_parties ~k in
  let maximal =
    (* threshold-1 over L, materialized *)
    List.map Party_set.singleton participants
  in
  let structure = B.Adversary_structure.Explicit maximal in
  Alcotest.(check bool) "q3 holds" true (B.Adversary_structure.q3 structure ~participants);
  let params = B.Phase_king.params ~structure ~participants in
  let bad = Party_id.left 3 in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          pk_honest params (fun p -> if Party_id.index p = 0 then "x" else "y") p env)
      ~byzantine:(fun p ->
        if Party_id.equal p bad then Some (pk_split_brain [ "x"; "y" ]) else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p bad)) participants in
  ignore (check_agreement ~what:"explicit structure" (honest_outputs res honest))

let test_phase_king_single_participant () =
  (* Degenerate instance: one participant, zero corruption. *)
  let params =
    B.Phase_king.params
      ~structure:(B.Adversary_structure.Threshold 0)
      ~participants:[ Party_id.left 0 ]
  in
  let res =
    run_protocol ~k:1
      ~honest:(fun p env ->
        if Party_id.equal p (Party_id.left 0) then pk_honest params (fun _ -> "solo") p env)
      ~byzantine:(fun _ -> None)
      ()
  in
  let outs = honest_outputs res [ Party_id.left 0 ] in
  Alcotest.(check (option string)) "own value" (Some "solo") (snd (List.hd outs))

let test_phase_king_unanimity_persistence =
  (* Validity as a property: unanimous honest inputs survive any of our
     byzantine strategies at any admissible corruption level. *)
  QCheck.Test.make ~name:"phase king validity under random byzantine" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.make seed in
      let k = 4 + Rng.int rng 4 in
      let t = (k - 1) / 3 in
      let params = pk_params ~k ~t in
      let bad = Rng.sample rng (max 1 t) (left_parties ~k) in
      let strategy p =
        if List.exists (Party_id.equal p) bad then
          Some
            (match Rng.int rng 2 with
            | 0 -> pk_split_brain [ "not-v"; "v" ]
            | _ ->
              B.Strategies.noise ~seed:(Rng.int rng 9999) ~rounds:30 ~burst:5
                ~targets:(left_parties ~k))
        else None
      in
      let res =
        run_protocol ~k
          ~honest:(fun p env ->
            if Side.equal (Party_id.side p) Side.Left then
              pk_honest params (fun _ -> "v") p env)
          ~byzantine:strategy ()
      in
      let honest =
        List.filter (fun p -> not (List.exists (Party_id.equal p) bad)) (left_parties ~k)
      in
      List.for_all (fun (_, out) -> out = Some "v") (honest_outputs res honest))

let test_dolev_strong_truncated_chain_rejected () =
  (* A byzantine relay truncates a valid 2-link chain back to 1 link and
     replays it late: the length-vs-round rule must reject it. *)
  let k = 2 in
  let pki = ds_setup ~k ~seed:8 in
  let participants = Party_id.all ~k in
  let params =
    { B.Dolev_strong.participants; t = 2; verifier = Crypto.Pki.verifier pki }
  in
  let sender = Party_id.left 0 in
  let truncator (env : Engine.env) =
    (* Round 1: receive the sender's 1-link chain. Round 2: replay the
       1-link chain unchanged (should be rejected: round 2 expects 2
       links). *)
    let inbox = env.Engine.next_round () in
    ignore (env.Engine.next_round ());
    List.iter
      (fun (e : Engine.envelope) ->
        List.iter
          (fun p ->
            if not (Party_id.equal p env.Engine.self) then env.Engine.send_slice p e.Engine.data)
          participants)
      inbox;
    ignore (env.Engine.next_round ())
  in
  (* Sender sends only to the truncator, so honest parties can only learn
     the value through a *valid* relay chain — the truncated replay must
     not count. Honest parties should decide the default. *)
  let stingy_sender (env : Engine.env) =
    let signer = Crypto.Pki.signer pki sender in
    let chain = B.Dolev_strong.Chain.start signer "secret" in
    env.Engine.send (Party_id.left 1) (Wire.encode B.Dolev_strong.Chain.codec chain)
  in
  let truncator_id = Party_id.left 1 in
  let res =
    run_protocol ~k
      ~honest:(fun p env -> ds_honest params pki ~sender (fun _ -> "secret") p env)
      ~byzantine:(fun p ->
        if Party_id.equal p sender then Some stingy_sender
        else if Party_id.equal p truncator_id then Some truncator
        else None)
      ()
  in
  let honest =
    List.filter
      (fun p -> not (Party_id.equal p sender || Party_id.equal p truncator_id))
      participants
  in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (option string)) "truncated replay rejected -> default"
        (Some "default") out)
    (honest_outputs res honest)

let test_pi_bb_rounds_formula () =
  (* Δ_BB = 1 + Δ_BA = 1 + (3(t+1) + 1) virtual rounds. *)
  List.iter
    (fun (k, t) ->
      let params = pk_params ~k ~t in
      Alcotest.(check int)
        (Printf.sprintf "k=%d t=%d" k t)
        (1 + (3 * (t + 1)) + 1)
        (B.Pi_bb.rounds params))
    [ 4, 1; 7, 2; 13, 4 ]

(* --- gradecast -------------------------------------------------------------- *)

let gc_params ~k ~t =
  {
    B.Gradecast.structure = B.Adversary_structure.Threshold t;
    participants = Party_id.side_members Side.Left ~k;
  }

let gc_verdict_codec = Wire.pair (Wire.option Wire.string) Wire.uint

let gc_honest params ~sender inputs p (env : Engine.env) =
  let machine = B.Gradecast.make params ~self:p ~sender ~input:(inputs p) in
  let v = B.Machine.run (Net.direct env) machine in
  env.Engine.output
    (Wire.encode gc_verdict_codec (v.B.Gradecast.value, v.B.Gradecast.grade))

let gc_decode out =
  match out with
  | Some payload -> Wire.decode_exn gc_verdict_codec payload
  | None -> Alcotest.fail "missing gradecast output"

let test_gradecast_honest_sender_grade2 () =
  let k = 4 in
  let params = gc_params ~k ~t:1 in
  let sender = Party_id.left 0 in
  let bad = Party_id.left 3 in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          gc_honest params ~sender (fun _ -> "the-value") p env)
      ~byzantine:(fun p ->
        if Party_id.equal p bad then Some (pk_split_brain [ "x" ]) else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p bad)) (left_parties ~k) in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (pair (option string) int))
        "value with grade 2"
        (Some "the-value", 2) (gc_decode out))
    (honest_outputs res honest)

let test_gradecast_silent_sender_grade0 () =
  let k = 4 in
  let params = gc_params ~k ~t:1 in
  let sender = Party_id.left 0 in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          gc_honest params ~sender (fun _ -> "unused") p env)
      ~byzantine:(fun p ->
        if Party_id.equal p sender then Some B.Strategies.silent else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p sender)) (left_parties ~k) in
  List.iter
    (fun (_, out) ->
      Alcotest.(check (pair (option string) int)) "grade 0" (None, 0) (gc_decode out))
    (honest_outputs res honest)

let gradecast_invariants verdicts =
  (* Graded consistency: non-None values all equal; max grade - min grade
     <= 1; grade 0 iff value None. *)
  let values = List.filter_map fst verdicts in
  let grades = List.map snd verdicts in
  List.length (List.sort_uniq String.compare values) <= 1
  && (match List.sort Int.compare grades with
     | [] -> true
     | sorted -> List.nth sorted (List.length sorted - 1) - List.hd sorted <= 1)
  && List.for_all
       (fun (v, g) ->
         match v with
         | None -> g = 0
         | Some _ -> g >= 1)
       verdicts

let test_gradecast_equivocating_sender_consistent () =
  let k = 4 in
  let params = gc_params ~k ~t:1 in
  let sender = Party_id.left 0 in
  let equivocator (env : Engine.env) =
    List.iteri
      (fun i p ->
        if not (Party_id.equal p sender) then begin
          let v = if i mod 2 = 0 then "one" else "two" in
          env.Engine.send p
            (Wire.encode
               (Wire.variant ~name:"gc"
                  [
                    Wire.pack
                      (Wire.case 0 Wire.string ~inject:Fun.id ~match_:Option.some);
                  ])
               v)
        end)
      (left_parties ~k);
    ignore (env.Engine.next_round ())
  in
  let res =
    run_protocol ~k
      ~honest:(fun p env ->
        if Side.equal (Party_id.side p) Side.Left then
          gc_honest params ~sender (fun _ -> "unused") p env)
      ~byzantine:(fun p -> if Party_id.equal p sender then Some equivocator else None)
      ()
  in
  let honest = List.filter (fun p -> not (Party_id.equal p sender)) (left_parties ~k) in
  let verdicts = List.map (fun (_, out) -> gc_decode out) (honest_outputs res honest) in
  Alcotest.(check bool) "graded consistency" true (gradecast_invariants verdicts)

let prop_gradecast_consistency_random =
  QCheck.Test.make ~name:"gradecast graded consistency under random byzantine"
    ~count:80
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.make seed in
      let k = 4 + Rng.int rng 4 in
      let t = (k - 1) / 3 in
      let params = gc_params ~k ~t in
      let sender = Rng.choose rng (left_parties ~k) in
      let bad = Rng.sample rng (max 1 t) (left_parties ~k) in
      let strategy p =
        if List.exists (Party_id.equal p) bad then
          Some
            (match Rng.int rng 3 with
            | 0 -> B.Strategies.silent
            | 1 ->
              B.Strategies.noise ~seed:(Rng.int rng 9999) ~rounds:10 ~burst:4
                ~targets:(left_parties ~k)
            | _ -> pk_split_brain [ "a"; "b" ])
        else None
      in
      let res =
        run_protocol ~k
          ~honest:(fun p env ->
            if Side.equal (Party_id.side p) Side.Left then
              gc_honest params ~sender (fun _ -> "v") p env)
          ~byzantine:strategy ()
      in
      let honest =
        List.filter (fun p -> not (List.exists (Party_id.equal p) bad)) (left_parties ~k)
      in
      let verdicts = List.map (fun (_, out) -> gc_decode out) (honest_outputs res honest) in
      gradecast_invariants verdicts
      &&
      (* validity when the sender is honest *)
      (List.exists (Party_id.equal sender) bad
      || List.for_all (fun (v, g) -> v = Some "v" && g = 2) verdicts))

(* --- randomized byzantine sweep (property test) --------------------------- *)

let prop_phase_king_agreement_random =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000) in
  QCheck.Test.make ~name:"phase king agreement under random byzantine" ~count:80 arb
    (fun seed ->
      let rng = Rng.make seed in
      let k = 4 + Rng.int rng 3 in
      let t = (k - 1) / 3 in
      let params = pk_params ~k ~t in
      let bad = Rng.sample rng t (left_parties ~k) in
      let inputs _ = string_of_int (Rng.int rng 3) in
      let strategy p =
        if List.exists (Party_id.equal p) bad then
          Some
            (match Rng.int rng 3 with
            | 0 -> B.Strategies.silent
            | 1 ->
              B.Strategies.noise ~seed:(Rng.int rng 10000) ~rounds:30 ~burst:4
                ~targets:(left_parties ~k)
            | _ -> pk_split_brain [ "0"; "1"; "2" ])
        else None
      in
      let res =
        run_protocol ~k
          ~honest:(fun p env ->
            if Side.equal (Party_id.side p) Side.Left then pk_honest params inputs p env)
          ~byzantine:strategy ()
      in
      let honest =
        List.filter (fun p -> not (List.exists (Party_id.equal p) bad)) (left_parties ~k)
      in
      let outs = honest_outputs res honest in
      match outs with
      | [] -> false
      | (_, first) :: rest -> List.for_all (fun (_, o) -> o = first) rest)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "broadcast"
    [
      ( "adversary-structure",
        [
          Alcotest.test_case "threshold membership" `Quick test_possibly_corrupt_threshold;
          Alcotest.test_case "two-sided membership" `Quick test_possibly_corrupt_two_sided;
          Alcotest.test_case "q3 two-sided = Lemma 4 formula" `Quick
            test_q3_two_sided_matches_lemma4;
          Alcotest.test_case "q3 explicit agrees with two-sided" `Slow
            test_q3_explicit_agrees_with_two_sided;
          Alcotest.test_case "king sequence honest" `Quick test_king_sequence_not_corruptible;
          Alcotest.test_case "king sequence picks cheap side" `Quick
            test_king_sequence_picks_cheap_side;
        ] );
      ( "phase-king",
        [
          Alcotest.test_case "all honest validity" `Quick test_phase_king_all_honest_validity;
          Alcotest.test_case "agreement under byzantine" `Quick
            test_phase_king_agreement_under_byzantine;
          Alcotest.test_case "two-sided structure, one side fully byzantine" `Quick
            test_phase_king_two_sided_structure;
          Alcotest.test_case "round complexity = 3(t+1)" `Quick
            test_phase_king_round_complexity;
          Alcotest.test_case "explicit adversary structure" `Quick
            test_phase_king_explicit_structure;
          Alcotest.test_case "single participant" `Quick
            test_phase_king_single_participant;
          qcheck prop_phase_king_agreement_random;
          qcheck test_phase_king_unanimity_persistence;
        ] );
      ( "pi-ba",
        [
          Alcotest.test_case "no omissions: full BA" `Quick test_pi_ba_no_omissions_is_ba;
          Alcotest.test_case "omissions: weak agreement + termination" `Quick
            test_pi_ba_weak_agreement_under_omissions;
        ] );
      ( "pi-bb",
        [
          Alcotest.test_case "honest sender validity" `Quick test_pi_bb_honest_sender_validity;
          Alcotest.test_case "byzantine sender agreement" `Quick
            test_pi_bb_byzantine_sender_agreement;
          Alcotest.test_case "silent sender default" `Quick test_pi_bb_silent_sender_default;
          Alcotest.test_case "rounds formula" `Quick test_pi_bb_rounds_formula;
        ] );
      ( "gradecast",
        [
          Alcotest.test_case "honest sender: grade 2" `Quick
            test_gradecast_honest_sender_grade2;
          Alcotest.test_case "silent sender: grade 0" `Quick
            test_gradecast_silent_sender_grade0;
          Alcotest.test_case "equivocating sender: consistent" `Quick
            test_gradecast_equivocating_sender_consistent;
          qcheck prop_gradecast_consistency_random;
        ] );
      ( "dolev-strong",
        [
          Alcotest.test_case "honest sender, t=n-1" `Quick test_dolev_strong_honest_sender;
          Alcotest.test_case "equivocating sender + late helper" `Quick
            test_dolev_strong_equivocating_sender;
          Alcotest.test_case "forgery impossible" `Quick test_dolev_strong_forgery_impossible;
          Alcotest.test_case "silent sender" `Quick test_dolev_strong_silent_sender;
          Alcotest.test_case "truncated chain rejected" `Quick
            test_dolev_strong_truncated_chain_rejected;
        ] );
    ]
