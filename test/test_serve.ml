(* Tests for the serve layer: SPSC ring ordering under real concurrency,
   admission/backpressure, instance-table lifecycle, seq==par (and
   run-to-run) determinism of the open-loop load bench, live-transport
   bit-identity against the engine (faults included), the socket
   transport end to end, and the Pool.shutdown regression for
   long-running serve loops. *)

open Bsm_prelude
module Serve = Bsm_serve
module Ring = Serve.Ring
module Frame = Serve.Frame
module Instances = Serve.Instances
module Server = Serve.Server
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool
module Topology = Bsm_topology.Topology
module Wire = Bsm_wire.Wire
module SM = Bsm_stable_matching
module Core = Bsm_core
module Schedule = Bsm_chaos.Schedule

(* --- ring ---------------------------------------------------------------- *)

let test_ring_spsc_ordering () =
  (* A real producer/consumer pair across domains, with a ring small
     enough to wrap many times and block both sides. *)
  let n = 10_000 in
  let ring = Ring.create ~capacity:8 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          if not (Ring.push ring i) then failwith "push on open ring failed"
        done;
        Ring.close ring)
  in
  let received = ref [] in
  let rec consume () =
    match Ring.pop ring with
    | Some v ->
      received := v :: !received;
      consume ()
    | None -> ()
  in
  consume ();
  Domain.join producer;
  Alcotest.(check int) "all received" n (List.length !received);
  Alcotest.(check (list int)) "FIFO order" (List.init n Fun.id) (List.rev !received)

let test_ring_try_ops_and_close () =
  let ring = Ring.create ~capacity:3 () in
  Alcotest.(check int) "capacity rounds up" 4 (Ring.capacity ring);
  for i = 0 to 3 do
    Alcotest.(check bool) "push fits" true (Ring.try_push ring i)
  done;
  Alcotest.(check bool) "full" false (Ring.try_push ring 99);
  Alcotest.(check int) "length" 4 (Ring.length ring);
  Alcotest.(check (option int)) "pop" (Some 0) (Ring.try_pop ring);
  Alcotest.(check bool) "space again" true (Ring.try_push ring 4);
  Ring.close ring;
  Alcotest.(check bool) "push after close" false (Ring.try_push ring 5);
  Alcotest.(check (option int)) "drains after close" (Some 1) (Ring.try_pop ring);
  Alcotest.(check (option int)) "blocking pop drains" (Some 2) (Ring.pop ring);
  ignore (Ring.pop ring);
  ignore (Ring.pop ring);
  Alcotest.(check (option int)) "end of stream" None (Ring.pop ring)

(* --- admission / backpressure -------------------------------------------- *)

let gs_spec ?(k = 4) req_id =
  { Frame.req_id; workload = Frame.Gs { k; seed = req_id; family = SM.Flat.Uniform } }

let server ?(queue_capacity = 4) ?(batch = 64) ?(chaos = false) () =
  Server.create
    ~pool:(Pool.create ~jobs:1 ())
    ~config:
      { Server.default_config with queue_capacity; batch; max_k = 64; chaos }
    ()

let test_backpressure_reject () =
  let s = server ~queue_capacity:4 () in
  let answers = List.init 6 (fun i -> Server.submit s ~tick:0 (gs_spec i)) in
  let accepted =
    List.filter (function Frame.Accepted _ -> true | _ -> false) answers
  in
  let full =
    List.filter
      (function Frame.Rejected { reason = Frame.Queue_full; _ } -> true | _ -> false)
      answers
  in
  Alcotest.(check int) "queue capacity admitted" 4 (List.length accepted);
  Alcotest.(check int) "overflow shed with Queue_full" 2 (List.length full);
  (* Retiring the queue reopens admission. *)
  let dones = Server.tick s ~tick:1 in
  Alcotest.(check int) "batch retired" 4 (List.length dones);
  (match Server.submit s ~tick:2 (gs_spec 10) with
  | Frame.Accepted _ -> ()
  | r -> Alcotest.failf "expected acceptance, got %a" Frame.pp_response r);
  (* Typed rejects for the other admission failures. *)
  (match Server.submit s ~tick:2 (gs_spec ~k:1000 11) with
  | Frame.Rejected { reason = Frame.Too_large; _ } -> ()
  | r -> Alcotest.failf "expected Too_large, got %a" Frame.pp_response r);
  (match Server.submit s ~tick:2 (gs_spec 10) with
  | Frame.Rejected { reason = Frame.Unsolvable; _ } -> ()
  | r -> Alcotest.failf "expected duplicate reject, got %a" Frame.pp_response r);
  Server.close s;
  match Server.submit s ~tick:3 (gs_spec 12) with
  | Frame.Rejected { reason = Frame.Shutting_down; _ } -> ()
  | r -> Alcotest.failf "expected Shutting_down, got %a" Frame.pp_response r

let test_lifecycle_transitions () =
  let t = Instances.create ~shards:2 () in
  let r = Instances.add t ~tick:0 (gs_spec 1) in
  Alcotest.(check int) "submitted" 1 (Instances.count t Instances.Submitted);
  Instances.transition t r Instances.Running;
  Alcotest.(check int) "running" 1 (Instances.count t Instances.Running);
  Instances.finish t r ~tick:3 (Frame.Matched { fingerprint = 7L; rounds = 2 });
  Alcotest.(check int) "matched" 1 (Instances.count t Instances.Matched);
  Alcotest.(check int) "nothing pending" 0 (Instances.pending t);
  (* Illegal moves raise: finality is absorbing, Submitted can't skip
     Running, duplicates are refused. *)
  Alcotest.check_raises "finished records are frozen"
    (Invalid_argument "Instances.transition: matched -> running (req #1)")
    (fun () -> Instances.transition t r Instances.Running);
  let r2 = Instances.add t ~tick:4 (gs_spec 2) in
  Alcotest.check_raises "no skipping Running"
    (Invalid_argument "Instances.transition: submitted -> matched (req #2)")
    (fun () -> Instances.transition t r2 Instances.Matched);
  Alcotest.check_raises "duplicate live req_id"
    (Invalid_argument "Instances.add: duplicate req_id 2") (fun () ->
      ignore (Instances.add t ~tick:5 (gs_spec 2)));
  (* The Timed_out leg. *)
  Instances.transition t r2 Instances.Running;
  Instances.finish t r2 ~tick:9 Frame.Timed_out;
  Alcotest.(check int) "timed out" 1 (Instances.count t Instances.Timed_out);
  Alcotest.(check int) "total admitted" 2 (Instances.total t)

(* --- determinism --------------------------------------------------------- *)

let bench_params ~jobs ~chaos =
  {
    Serve.Serve_bench.default_params with
    instances = 120;
    seed = 5;
    jobs;
    queue_capacity = 16;
    batch = 8;
    k_min = 4;
    k_max = 12;
    mean_gap = 0;
    chaos;
  }

let check_same_results (a : Serve.Serve_bench.results) (b : Serve.Serve_bench.results)
    =
  Alcotest.(check int) "ticks" a.ticks b.ticks;
  Alcotest.(check int) "matched" a.matched b.matched;
  Alcotest.(check int) "failed" a.failed b.failed;
  Alcotest.(check int) "queue rejects" a.queue_rejects b.queue_rejects;
  Alcotest.(check int) "p50" a.p50_ticks b.p50_ticks;
  Alcotest.(check int) "p99" a.p99_ticks b.p99_ticks;
  Alcotest.(check string) "fingerprint" (Int64.to_string a.fingerprint)
    (Int64.to_string b.fingerprint);
  Alcotest.(check int) "request bytes" a.request_bytes b.request_bytes;
  Alcotest.(check int) "response bytes" a.response_bytes b.response_bytes

let test_load_seq_equals_par () =
  let seq = Serve.Serve_bench.run (bench_params ~jobs:1 ~chaos:false) in
  let par = Serve.Serve_bench.run (bench_params ~jobs:3 ~chaos:false) in
  Alcotest.(check int) "all matched" 120 seq.matched;
  check_same_results seq par;
  (* And bit-identical JSON across two runs at the same jobs. *)
  let again = Serve.Serve_bench.run (bench_params ~jobs:1 ~chaos:false) in
  Alcotest.(check string) "replayable JSON"
    (Serve.Serve_bench.to_json seq)
    (Serve.Serve_bench.to_json again)

let test_chaos_on_live_within_budget () =
  let r = Serve.Serve_bench.run { (bench_params ~jobs:2 ~chaos:true) with instances = 40 } in
  Alcotest.(check int) "no oracle violations" 0 r.violations;
  Alcotest.(check int) "all matched under within-budget chaos" 40 r.matched

(* --- live transport vs engine -------------------------------------------- *)

let test_live_equals_engine () =
  match Serve.Serve_bench.live_check ~k:3 ~seed:11 with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "live diverged from engine: %s" msg

let test_live_equals_engine_under_faults () =
  (* Same programs, same compiled fault schedule — omissions and
     in-flight corruption — through both executors; statuses and
     outputs must agree bit-for-bit. *)
  let k = 2 in
  let profile = SM.Profile.random (Rng.make 3) k in
  let programs p =
    Core.Distributed_gs.program ~input:(SM.Profile.prefs profile p) ~self:p
  in
  let schedule =
    Schedule.all
      [
        Schedule.send_omission ~rate:0.3 (Party_id.right 0);
        Schedule.during ~from_round:1 ~until_round:3
          (Schedule.corrupt ~rate:0.5 ~kind:Bsm_chaos.Mutation.Bit_flip
             (Party_id.left 1));
      ]
  in
  let faults = Schedule.compile ~seed:9 schedule in
  let max_rounds = 40 in
  let link = Engine.Of_topology Topology.Bipartite in
  let engine =
    (Engine.run (Engine.config ~k ~max_rounds ~faults ~link ()) ~programs)
      .Engine.parties
  in
  let live = Serve.Live.run ~max_rounds ~faults ~k ~link ~programs () in
  List.iter2
    (fun (e : Engine.party_result) (l : Engine.party_result) ->
      Alcotest.(check bool)
        (Format.asprintf "id %a" Party_id.pp e.Engine.id)
        true
        (Party_id.equal e.Engine.id l.Engine.id);
      Alcotest.(check bool)
        (Format.asprintf "status %a" Party_id.pp e.Engine.id)
        true (e.Engine.status = l.Engine.status);
      Alcotest.(check (option string))
        (Format.asprintf "output %a" Party_id.pp e.Engine.id)
        e.Engine.out l.Engine.out)
    engine live

let test_live_equals_engine_under_state_corruption () =
  (* Same programs, same compiled corrupt-state schedule through both
     executors: workers must register the same cells in the same order
     and the between-rounds scramble must draw the same hashes, so
     statuses, outputs and finish rounds agree bit-for-bit. *)
  let k = 2 in
  let profile = SM.Profile.random (Rng.make 5) k in
  let programs p =
    Core.Distributed_gs.program ~input:(SM.Profile.prefs profile p) ~self:p
  in
  let schedule =
    Schedule.all
      [
        Schedule.corrupt_state ~rate:1.0 (Party_id.right 0) ~at_round:1;
        Schedule.corrupt_state ~rate:0.7 (Party_id.left 0) ~at_round:2;
      ]
  in
  let faults = Schedule.compile ~seed:4 schedule in
  let max_rounds = 60 in
  let link = Engine.Of_topology Topology.Bipartite in
  let engine =
    (Engine.run (Engine.config ~k ~max_rounds ~faults ~link ()) ~programs)
      .Engine.parties
  in
  let live = Serve.Live.run ~max_rounds ~faults ~k ~link ~programs () in
  List.iter2
    (fun (e : Engine.party_result) (l : Engine.party_result) ->
      Alcotest.(check bool)
        (Format.asprintf "status %a" Party_id.pp e.Engine.id)
        true (e.Engine.status = l.Engine.status);
      Alcotest.(check (option string))
        (Format.asprintf "output %a" Party_id.pp e.Engine.id)
        e.Engine.out l.Engine.out;
      Alcotest.(check (option int))
        (Format.asprintf "finish round %a" Party_id.pp e.Engine.id)
        e.Engine.finished_round l.Engine.finished_round)
    engine live

(* --- socket transport ---------------------------------------------------- *)

let test_uds_end_to_end () =
  let path = Filename.temp_file "bsm-serve" ".sock" in
  Sys.remove path;
  let listener = Serve.Uds.listen ~path in
  let n = 5 in
  let client =
    Domain.spawn (fun () ->
        let c = Serve.Uds.connect ~path in
        for i = 0 to n - 1 do
          Serve.Uds.send c (Frame.Submit (gs_spec i))
        done;
        let dones = ref 0 and matched = ref 0 in
        while !dones < n do
          match Serve.Uds.recv c with
          | Some (Frame.Done { outcome = Frame.Matched _; _ }) ->
            incr dones;
            incr matched
          | Some (Frame.Done _) -> incr dones
          | Some (Frame.Accepted _) -> ()
          | Some (Frame.Rejected _) -> incr dones
          | None -> failwith "server closed early"
        done;
        Serve.Uds.send c Frame.Bye;
        Serve.Uds.close c;
        !matched)
  in
  let s = server ~queue_capacity:16 () in
  let routes = Hashtbl.create 8 in
  let served = ref 0 in
  let tick = ref 0 in
  while !served < n do
    incr tick;
    if !tick > 10_000 then failwith "uds test: no progress";
    List.iter
      (fun event ->
        match event with
        | Serve.Uds.Request (conn, Frame.Submit spec) ->
          let resp = Server.submit s ~tick:!tick spec in
          (match resp with
          | Frame.Accepted _ -> Hashtbl.replace routes spec.Frame.req_id conn
          | _ -> ());
          Serve.Uds.respond listener conn resp
        | Serve.Uds.Request (conn, Frame.Bye) -> Serve.Uds.drop listener conn
        | Serve.Uds.Bad_frame (_, reason) -> Alcotest.failf "bad frame: %s" reason
        | Serve.Uds.Connect _ | Serve.Uds.Disconnect _ -> ())
      (Serve.Uds.poll listener ~timeout_s:0.01);
    List.iter
      (fun resp ->
        match resp with
        | Frame.Done { req_id; _ } ->
          incr served;
          (match Hashtbl.find_opt routes req_id with
          | Some conn -> Serve.Uds.respond listener conn resp
          | None -> ())
        | _ -> ())
      (Server.tick s ~tick:!tick)
  done;
  let matched = Domain.join client in
  Serve.Uds.shutdown listener;
  Alcotest.(check int) "all matched over the socket" n matched

let test_uds_rejects_bad_frames () =
  (* A byzantine client: a giant length prefix must be a Bad_frame
     event, not an allocation or a crash. *)
  let path = Filename.temp_file "bsm-serve" ".sock" in
  Sys.remove path;
  let listener = Serve.Uds.listen ~path in
  let writer =
    Domain.spawn (fun () ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        let junk = Bytes.of_string "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f" in
        ignore (Unix.write fd junk 0 (Bytes.length junk));
        fd)
  in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait_bad () =
    if Unix.gettimeofday () > deadline then Alcotest.fail "no Bad_frame event"
    else
      match
        List.find_opt
          (function Serve.Uds.Bad_frame _ -> true | _ -> false)
          (Serve.Uds.poll listener ~timeout_s:0.05)
      with
      | Some _ -> ()
      | None -> wait_bad ()
  in
  wait_bad ();
  Unix.close (Domain.join writer);
  Serve.Uds.shutdown listener

(* --- frame codecs -------------------------------------------------------- *)

let test_frame_codecs_roundtrip () =
  let rng = Rng.make 21 in
  for _ = 1 to 200 do
    let w = Frame.gen_workload rng in
    Alcotest.(check bool) "workload" true
      (Wire.decode_exn Frame.workload_codec (Wire.encode Frame.workload_codec w) = w);
    let q = Frame.gen_request rng in
    Alcotest.(check bool) "request" true
      (Wire.decode_exn Frame.request_codec (Wire.encode Frame.request_codec q) = q);
    let r = Frame.gen_response rng in
    Alcotest.(check bool) "response" true
      (Wire.decode_exn Frame.response_codec (Wire.encode Frame.response_codec r) = r)
  done;
  (* Hardened decode: truncation and budget violations are Errors. *)
  let bytes = Wire.encode Frame.workload_codec (gs_spec 0).Frame.workload in
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error
       (Wire.decode Frame.workload_codec (String.sub bytes 0 (String.length bytes - 1))));
  let invalid =
    (* Bsm with t_left > k must not decode. *)
    let buf = Wire.Enc.create () in
    Wire.Enc.tag buf 1;
    Wire.Enc.uint buf 2 (* k *);
    Wire.Enc.uint buf 0 (* topology *);
    Wire.Enc.uint buf 1 (* auth *);
    Wire.Enc.uint buf 3 (* t_left > k *);
    Wire.Enc.uint buf 0;
    Wire.Enc.int buf 0;
    Wire.Enc.int buf 0;
    Wire.Enc.bool buf false;
    Wire.Enc.to_string buf
  in
  Alcotest.(check bool) "over-budget setting rejected" true
    (Result.is_error (Wire.decode Frame.workload_codec invalid))

(* --- pool shutdown regression -------------------------------------------- *)

let test_shutdown_waits_for_inflight_map () =
  (* The serve-loop scenario: one domain is mid-[map] on the pool when
     another calls [shutdown]. Shutdown must wait for the batch (the
     map completes, results intact), stay idempotent, and leave later
     maps rejected. *)
  let pool = Pool.create ~jobs:2 () in
  let started = Atomic.make false in
  let mapper =
    Domain.spawn (fun () ->
        Pool.map pool
          (fun i ->
            Atomic.set started true;
            Unix.sleepf 0.002;
            i * i)
          (List.init 200 Fun.id))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  let results = Domain.join mapper in
  Alcotest.(check (list int))
    "in-flight map completed under shutdown"
    (List.init 200 (fun i -> i * i))
    results;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1 ]))

let test_shutdown_global_while_serving () =
  (* A server holding the global pool: shutdown_global mid-traffic must
     not strand or crash it, and the next global () self-heals. *)
  let s = Server.create () (* global pool *) in
  for i = 0 to 7 do
    ignore (Server.submit s ~tick:0 (gs_spec i))
  done;
  ignore (Server.tick s ~tick:1);
  Pool.shutdown_global ();
  Pool.shutdown_global () (* idempotent *);
  (* The global pool self-heals for the next server. *)
  let s2 = Server.create () in
  ignore (Server.submit s2 ~tick:0 (gs_spec 0));
  let dones = Server.tick s2 ~tick:1 in
  Alcotest.(check int) "served after global shutdown" 1 (List.length dones)

(* --- readiness (poll-based) --------------------------------------------- *)

let test_readiness_pipe () =
  (* A pipe with nothing written is not readable; after a write it is;
     after the write end closes, the hangup must read as ready (the
     read path observes EOF), exactly like select. *)
  let r, w = Unix.pipe () in
  let ready () = Serve.Readiness.readable [| r |] ~timeout_s:0. in
  Alcotest.(check (array bool)) "empty pipe not ready" [| false |] (ready ());
  let n = Unix.write w (Bytes.of_string "x") 0 1 in
  Alcotest.(check int) "wrote one byte" 1 n;
  Alcotest.(check (array bool)) "pending byte ready" [| true |] (ready ());
  let b = Bytes.create 1 in
  ignore (Unix.read r b 0 1);
  Alcotest.(check (array bool)) "drained pipe not ready" [| false |] (ready ());
  Unix.close w;
  Alcotest.(check (array bool)) "closed writer reads as ready (EOF)" [| true |]
    (ready ());
  Unix.close r

let test_readiness_many_fds () =
  (* One readable descriptor among many idle ones: exactly its slot
     flips, at the right index. *)
  let pipes = Array.init 16 (fun _ -> Unix.pipe ()) in
  let hot = 11 in
  ignore (Unix.write (snd pipes.(hot)) (Bytes.of_string "!") 0 1);
  let fds = Array.map fst pipes in
  let ready = Serve.Readiness.readable fds ~timeout_s:0. in
  Array.iteri
    (fun i r -> Alcotest.(check bool) (Printf.sprintf "slot %d" i) (i = hot) r)
    ready;
  Array.iter
    (fun (r, w) ->
      Unix.close r;
      Unix.close w)
    pipes

let test_readiness_timeout_waits () =
  (* A positive timeout on an idle fd returns not-ready (and does not
     hang forever — reaching the assertion is the test). *)
  let r, w = Unix.pipe () in
  let ready = Serve.Readiness.readable [| r |] ~timeout_s:0.01 in
  Alcotest.(check (array bool)) "timed out, nothing ready" [| false |] ready;
  Unix.close r;
  Unix.close w

let () =
  Alcotest.run "serve"
    [
      ( "ring",
        [
          Alcotest.test_case "spsc ordering across domains" `Quick
            test_ring_spsc_ordering;
          Alcotest.test_case "try ops and close" `Quick test_ring_try_ops_and_close;
        ] );
      ( "server",
        [
          Alcotest.test_case "backpressure and typed rejects" `Quick
            test_backpressure_reject;
          Alcotest.test_case "instance lifecycle" `Quick test_lifecycle_transitions;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "load bench seq == par" `Quick test_load_seq_equals_par;
          Alcotest.test_case "chaos-on-live within budget" `Quick
            test_chaos_on_live_within_budget;
        ] );
      ( "live",
        [
          Alcotest.test_case "live == engine (fault-free)" `Quick
            test_live_equals_engine;
          Alcotest.test_case "live == engine (faults + corruption)" `Quick
            test_live_equals_engine_under_faults;
          Alcotest.test_case "live == engine (state corruption)" `Quick
            test_live_equals_engine_under_state_corruption;
        ] );
      ( "readiness",
        [
          Alcotest.test_case "pipe readiness and EOF hangup" `Quick
            test_readiness_pipe;
          Alcotest.test_case "one hot fd among many" `Quick test_readiness_many_fds;
          Alcotest.test_case "timeout returns not-ready" `Quick
            test_readiness_timeout_waits;
        ] );
      ( "uds",
        [
          Alcotest.test_case "end to end over a socket" `Quick test_uds_end_to_end;
          Alcotest.test_case "bad frames drop the connection" `Quick
            test_uds_rejects_bad_frames;
        ] );
      ( "frames",
        [
          Alcotest.test_case "codec roundtrips and hardening" `Quick
            test_frame_codecs_roundtrip;
        ] );
      ( "pool-shutdown",
        [
          Alcotest.test_case "waits for in-flight map" `Quick
            test_shutdown_waits_for_inflight_map;
          Alcotest.test_case "global shutdown while serving" `Quick
            test_shutdown_global_while_serving;
        ] );
    ]
