(* Tests for the deterministic multicore sweep runner: the domain pool's
   ordering/exception semantics, and bit-identical parallel vs sequential
   results for scenario sweeps, attack evaluation batches and the Lemma 3
   scaling stress. This is also the tier-1 smoke test that exercises the
   pool under `dune runtest`. *)

open Bsm_prelude
module Core = Bsm_core
module SM = Bsm_stable_matching
module H = Bsm_harness
module A = Bsm_attacks
module Engine = Bsm_runtime.Engine
module Pool = Bsm_runtime.Pool
module Topology = Bsm_topology.Topology

let setting ~k ~topology ~auth ~tl ~tr =
  Core.Setting.make_exn ~k ~topology ~auth ~t_left:tl ~t_right:tr

(* --- pool semantics ----------------------------------------------------- *)

let test_map_preserves_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 50 Fun.id in
      Alcotest.(check (list int))
        "ordered" (List.map (fun i -> i * i) xs)
        (Pool.map pool (fun i -> i * i) xs))

let test_map_empty_and_singleton () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun i -> i) []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map pool (fun i -> i) [ 7 ]))

let test_map_sequential_when_one_job () =
  (* jobs = 1 spawns no domain: tasks run inline on the caller, in input
     order — observable through a (caller-only) side effect. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let order = ref [] in
      let _ = Pool.map pool (fun i -> order := i :: !order) [ 1; 2; 3; 4 ] in
      Alcotest.(check (list int)) "ran in order" [ 1; 2; 3; 4 ] (List.rev !order))

let test_map_propagates_first_failure () =
  Pool.with_pool ~jobs:3 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i mod 3 = 2 then failwith (string_of_int i) else i)
          (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure msg ->
        Alcotest.(check string) "lowest failing index wins" "2" msg)

let test_map_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  match Pool.map pool (fun i -> i) [ 1; 2 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_jobs_accessor () =
  Pool.with_pool ~jobs:2 (fun pool -> Alcotest.(check int) "jobs" 2 (Pool.jobs pool))

(* --- chunked map stress -------------------------------------------------- *)

let test_map_large_input_ordered () =
  (* Many more items than chunks: ordering must survive the chunked
     submission path. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 500 Fun.id in
      Alcotest.(check (list int))
        "ordered" (List.map (fun i -> i * 7) xs)
        (Pool.map pool (fun i -> i * 7) xs))

let test_map_jobs_exceed_items () =
  (* More lanes than work: chunks degenerate to single items and the idle
     workers must neither deadlock nor duplicate. *)
  Pool.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int))
        "three items" [ 0; 2; 4 ]
        (Pool.map pool (fun i -> 2 * i) [ 0; 1; 2 ]))

exception Outer of string

let nested_raise i =
  (* An exception raised from within another exception's handler — the
     rethrown one must be what map reports. *)
  try failwith (string_of_int i) with Failure msg -> raise (Outer msg)

let test_map_nested_exceptions () =
  Pool.with_pool ~jobs:3 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i mod 4 = 3 then nested_raise i else i)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Outer"
      | exception Outer msg ->
        Alcotest.(check string) "lowest failing index, rethrown exception" "3" msg)

let test_map_exceptions_jobs1 () =
  (* The inline sequential path must have the same exception semantics as
     the parallel one: all items still run, lowest index wins. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let ran = ref 0 in
      (match
         Pool.map pool
           (fun i ->
             incr ran;
             if i >= 5 then failwith (string_of_int i))
           (List.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure msg ->
        Alcotest.(check string) "lowest failing index" "5" msg);
      Alcotest.(check int) "every item still ran" 10 !ran)

let test_map_usable_after_failure () =
  (* A failing map must not poison the pool: workers stay alive and the
     next map succeeds. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      (match Pool.map pool (fun _ -> failwith "boom") [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ());
      Alcotest.(check (list int))
        "pool still works" [ 2; 4; 6 ]
        (Pool.map pool (fun i -> 2 * i) [ 1; 2; 3 ]))

let test_default_jobs_clamped () =
  (* BSM_JOBS beyond the recommended domain count is clamped (running more
     domains than cores made every sweep slower); in-range values and the
     malformed error path are unchanged. *)
  let original = Sys.getenv_opt "BSM_JOBS" in
  let recommended = Domain.recommended_domain_count () in
  (* [Unix] has no unsetenv: restore an unset variable to a value with the
     same meaning (the recommended count) rather than "" (malformed). *)
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "BSM_JOBS"
        (Option.value original ~default:(string_of_int recommended)))
    (fun () ->
      Unix.putenv "BSM_JOBS" (string_of_int (recommended + 7));
      Alcotest.(check int) "oversubscription clamped" recommended (Pool.default_jobs ());
      Unix.putenv "BSM_JOBS" "1";
      Alcotest.(check int) "in-range value kept" 1 (Pool.default_jobs ());
      Unix.putenv "BSM_JOBS" "nope";
      match Pool.default_jobs () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_resolve_jobs_flag_beats_env () =
  (* Regression for `bsm chaos --jobs N`: an explicit flag must win over
     BSM_JOBS, verbatim — never clamped, never overridden. *)
  let original = Sys.getenv_opt "BSM_JOBS" in
  let recommended = Domain.recommended_domain_count () in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "BSM_JOBS"
        (Option.value original ~default:(string_of_int recommended)))
    (fun () ->
      Unix.putenv "BSM_JOBS" "1";
      Alcotest.(check int) "explicit flag beats env" 5 (Pool.resolve_jobs ~jobs:5 ());
      Alcotest.(check int)
        "explicit flag unclamped"
        (recommended + 9)
        (Pool.resolve_jobs ~jobs:(recommended + 9) ());
      Alcotest.(check int) "absent flag falls back to env" 1 (Pool.resolve_jobs ());
      match Pool.resolve_jobs ~jobs:0 () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_clamp_warns_once () =
  (* The oversubscription warning fires once per process, not once per
     default_jobs call. *)
  let original = Sys.getenv_opt "BSM_JOBS" in
  let recommended = Domain.recommended_domain_count () in
  let warnings = ref 0 in
  let counting_reporter =
    {
      Logs.report =
        (fun _src level ~over k _msgf ->
          if level = Logs.Warning then incr warnings;
          over ();
          k ());
    }
  in
  let old_reporter = Logs.reporter () in
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter old_reporter;
      Unix.putenv "BSM_JOBS"
        (Option.value original ~default:(string_of_int recommended)))
    (fun () ->
      Logs.set_reporter counting_reporter;
      Unix.putenv "BSM_JOBS" (string_of_int (recommended + 3));
      Pool.For_testing.reset_clamp_warning ();
      let _ = Pool.default_jobs () in
      let _ = Pool.default_jobs () in
      let _ = Pool.default_jobs () in
      Alcotest.(check int) "warned exactly once" 1 !warnings)

(* --- persistent workers & work stealing ---------------------------------- *)

(* Deterministic busy loop: per-index cost without shared state. *)
let busy_work units =
  let acc = ref 0 in
  for i = 1 to units * 1000 do
    acc := (!acc + i) land 0xFFFF
  done;
  !acc

let test_randomized_costs_all_jobs () =
  (* Bit-identity for every lane count 1..8 over tasks with randomized
     (per-index deterministic) costs — steal-order must stay invisible
     whatever the lane count. *)
  let n = 60 in
  let cost i = Rng.int (Rng.make (1000 + i)) 20 in
  let f i = i, busy_work (cost i), cost i in
  let xs = List.init n Fun.id in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d identical" jobs)
            true
            (Pool.map pool f xs = expected)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_stats_counters () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let s0 = Pool.stats pool in
      Alcotest.(check int) "fresh pool: no tasks" 0 s0.Pool.tasks;
      let _ = Pool.map pool (fun i -> i) (List.init 10 Fun.id) in
      let _ = Pool.map pool (fun i -> i) [ 7 ] in
      let s1 = Pool.stats pool in
      Alcotest.(check int) "tasks counted (incl. singleton path)" 11 s1.Pool.tasks;
      Alcotest.(check int) "no steals on the jobs=1 path" 0 s1.Pool.steals;
      Alcotest.(check int) "two batches" 2 s1.Pool.batches);
  Pool.with_pool ~jobs:4 (fun pool ->
      let _ =
        Pool.map pool (fun i -> busy_work (i mod 5)) (List.init 40 Fun.id)
      in
      let _ = Pool.map pool (fun i -> i) (List.init 10 Fun.id) in
      let s = Pool.stats pool in
      Alcotest.(check int) "tasks accumulate across maps" 50 s.Pool.tasks;
      Alcotest.(check int) "batches accumulate" 2 s.Pool.batches;
      Alcotest.(check bool)
        "steals bounded by tasks" true
        (s.Pool.steals <= s.Pool.tasks))

let test_straggler_rebalances () =
  (* One task ~100x the others. With one-cell tasks and work stealing,
     the straggler's lane-mates must not serialize behind it: idle lanes
     steal them. Assert a successful steal happened and that at least one
     of the straggler lane's other indices ran on a different domain
     (lane l owns indices l, l+jobs, ... — the submitter is lane 0).
     Bounded retries absorb scheduling variance on loaded machines. *)
  let n = 32 in
  let jobs = 4 in
  let attempt () =
    Pool.with_pool ~jobs (fun pool ->
        let owners = Array.make n (-1) in
        let _ =
          Pool.map pool
            (fun i ->
              owners.(i) <- (Domain.self () :> int);
              busy_work (if i = 0 then 20_000 else 50))
            (List.init n Fun.id)
        in
        let steals = (Pool.stats pool).Pool.steals in
        let straggler_domain = owners.(0) in
        let lane0_rest =
          List.filter (fun i -> i mod jobs = 0 && i <> 0) (List.init n Fun.id)
        in
        steals > 0
        && List.exists (fun i -> owners.(i) <> straggler_domain) lane0_rest)
  in
  let rec try_n k = attempt () || (k > 1 && try_n (k - 1)) in
  Alcotest.(check bool) "straggler's lane-mates got stolen" true (try_n 3)

let test_global_pool_persists () =
  Pool.shutdown_global ();
  let p1 = Pool.global () in
  let p2 = Pool.global () in
  Alcotest.(check bool) "global () returns the same pool" true (p1 == p2);
  Alcotest.(check (list int))
    "global pool works" [ 2; 4; 6 ]
    (Pool.map p1 (fun i -> 2 * i) [ 1; 2; 3 ]);
  Pool.shutdown_global ();
  Pool.shutdown_global ();
  (* idempotent *)
  let p3 = Pool.global () in
  Alcotest.(check bool) "fresh pool after shutdown_global" true (not (p3 == p1));
  Alcotest.(check (list int))
    "fresh global works" [ 1; 4; 9 ]
    (Pool.map p3 (fun i -> i * i) [ 1; 2; 3 ]);
  Pool.shutdown_global ()

(* --- fused sweep scheduler ------------------------------------------------ *)

let test_fused_matches_sequential () =
  let xs = List.init 30 Fun.id in
  let ys = [ "a"; "bb"; "ccc" ] in
  let f i = (i * i) + 1 in
  let g s = String.length s * 2 in
  Pool.with_pool ~jobs:3 (fun pool ->
      let batch = H.Sweep.Fused.create () in
      let hx = H.Sweep.Fused.add batch ~table:"squares" f xs in
      let hy = H.Sweep.Fused.add batch ~table:"lengths" g ys in
      let rs = H.Sweep.Fused.drain ~pool batch in
      Alcotest.(check (list int))
        "first table matches List.map" (List.map f xs)
        (H.Sweep.Fused.results hx);
      Alcotest.(check (list int))
        "second table matches List.map" (List.map g ys)
        (H.Sweep.Fused.results hy);
      Alcotest.(check int)
        "whole-run task count"
        (List.length xs + List.length ys)
        rs.H.Sweep.Fused.tasks;
      Alcotest.(check int) "jobs recorded" 3 rs.H.Sweep.Fused.jobs;
      let ts = H.Sweep.Fused.stats hx in
      Alcotest.(check string) "table name" "squares" ts.H.Sweep.Fused.table;
      Alcotest.(check int) "per-table task count" 30 ts.H.Sweep.Fused.tasks;
      Alcotest.(check bool)
        "worst cell bounded by total" true
        (ts.H.Sweep.Fused.task_ms_max <= ts.H.Sweep.Fused.task_ms_total +. 1e-9))

let test_fused_lifecycle_errors () =
  let batch = H.Sweep.Fused.create () in
  let h = H.Sweep.Fused.add batch ~table:"t" Fun.id [ 1; 2 ] in
  (match H.Sweep.Fused.results h with
  | _ -> Alcotest.fail "expected Invalid_argument before drain"
  | exception Invalid_argument _ -> ());
  (match H.Sweep.Fused.stats h with
  | _ -> Alcotest.fail "expected Invalid_argument before drain"
  | exception Invalid_argument _ -> ());
  let rs = H.Sweep.Fused.drain batch in
  Alcotest.(check int) "sequential drain runs the cells" 2 rs.H.Sweep.Fused.tasks;
  Alcotest.(check int) "sequential drain steals nothing" 0 rs.H.Sweep.Fused.steals;
  Alcotest.(check (list int)) "readable after drain" [ 1; 2 ] (H.Sweep.Fused.results h);
  match H.Sweep.Fused.add batch ~table:"late" Fun.id [ 3 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after drain"
  | exception Invalid_argument _ -> ()

let test_fused_failure_isolates_tables () =
  (* A raising cell fails the drain with the lowest-indexed exception, but
     the other tables' results stay readable; the failed table reports its
     unfinished cells instead of returning partial data. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let batch = H.Sweep.Fused.create () in
      let good = H.Sweep.Fused.add batch ~table:"good" (fun i -> i + 1) [ 1; 2; 3 ] in
      let bad =
        H.Sweep.Fused.add batch ~table:"bad"
          (fun i -> if i = 1 then failwith "cell 1" else i)
          [ 0; 1; 2 ]
      in
      (match H.Sweep.Fused.drain ~pool batch with
      | _ -> Alcotest.fail "expected drain failure"
      | exception Failure msg ->
        Alcotest.(check string) "failing cell's exception" "cell 1" msg);
      Alcotest.(check (list int))
        "surviving table readable" [ 2; 3; 4 ]
        (H.Sweep.Fused.results good);
      match H.Sweep.Fused.results bad with
      | _ -> Alcotest.fail "expected Invalid_argument on unfinished table"
      | exception Invalid_argument _ -> ())

(* --- parallel sweeps are bit-identical to sequential -------------------- *)

(* A report rendered to plain data: everything pp_report shows plus the
   raw metrics, so equality means byte-identical tables downstream. *)
let fingerprint (report : H.Scenario.report) =
  Format.asprintf "%a" H.Scenario.pp_report report, report.H.Scenario.metrics

let sweep_cases =
  [
    H.Sweep.case ~profile_seed:11 ~scenario_seed:1
      (setting ~k:3 ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Unauthenticated ~tl:0 ~tr:3);
    H.Sweep.case ~profile_seed:23 ~scenario_seed:2
      ~adversary:H.Sweep.Random_coalition
      (setting ~k:3 ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Unauthenticated ~tl:0 ~tr:1);
    H.Sweep.case ~profile_seed:37 ~scenario_seed:3
      ~adversary:H.Sweep.Random_coalition
      (setting ~k:3 ~topology:Topology.Fully_connected
         ~auth:Core.Setting.Authenticated ~tl:3 ~tr:3);
    H.Sweep.case ~profile_seed:41 ~scenario_seed:4
      (setting ~k:2 ~topology:Topology.Bipartite ~auth:Core.Setting.Authenticated
         ~tl:0 ~tr:2);
    H.Sweep.case ~profile_seed:53 ~scenario_seed:5
      ~adversary:H.Sweep.Random_coalition
      (setting ~k:2 ~topology:Topology.One_sided ~auth:Core.Setting.Authenticated
         ~tl:2 ~tr:1);
  ]

let test_sweep_parallel_equals_sequential () =
  let sequential =
    List.map (fun (_, r) -> fingerprint r) (H.Sweep.run_cases sweep_cases)
  in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        List.map (fun (_, r) -> fingerprint r) (H.Sweep.run_cases ~pool sweep_cases))
  in
  List.iteri
    (fun i ((seq_pp, seq_m), (par_pp, par_m)) ->
      Alcotest.(check string)
        (Printf.sprintf "case %d report identical" i)
        seq_pp par_pp;
      Alcotest.(check bool)
        (Printf.sprintf "case %d metrics identical" i)
        true (seq_m = par_m))
    (List.combine sequential parallel)

let test_sweep_repeated_runs_identical () =
  (* The same parallel sweep twice: domain scheduling must not leak into
     results. *)
  let run () =
    Pool.with_pool ~jobs:3 (fun pool ->
        List.map (fun (_, r) -> fingerprint r) (H.Sweep.run_cases ~pool sweep_cases))
  in
  Alcotest.(check bool) "two parallel runs identical" true (run () = run ())

let test_scenario_run_all_parallel () =
  let scenarios = List.map H.Sweep.scenario_of_case sweep_cases in
  let sequential = List.map fingerprint (H.Scenario.run_all scenarios) in
  let parallel =
    Pool.with_pool ~jobs:2 (fun pool ->
        List.map fingerprint (H.Scenario.run_all ~pool scenarios))
  in
  Alcotest.(check bool) "run_all identical" true (sequential = parallel)

let test_evaluate_batch_parallel () =
  let k = 3 in
  let topology = Topology.Fully_connected in
  let cases =
    List.map
      (fun seed ->
        let rng = Rng.make seed in
        let favorites = A.Evaluate.random_favorites rng ~k in
        let byzantine =
          [ Party_id.left 2, A.Naive.equivocating_announcer ~topology ~k ]
        in
        favorites, byzantine)
      (Util.range 1 7)
  in
  let protocol =
    A.Protocol_under_test.thresholded
      ~setting:
        (setting ~k ~topology ~auth:Core.Setting.Unauthenticated ~tl:1 ~tr:1)
  in
  let sequential = A.Evaluate.run_batch ~topology ~k ~cases protocol in
  let parallel =
    Pool.with_pool ~jobs:3 (fun pool ->
        A.Evaluate.run_batch ~pool ~topology ~k ~cases protocol)
  in
  Alcotest.(check bool) "violation lists identical" true (sequential = parallel);
  Alcotest.(check int) "six cases evaluated" 6 (List.length parallel);
  List.iter
    (fun vs -> Alcotest.(check bool) "in-threshold protocol clean" true (vs = []))
    parallel

let test_scaling_stress_parallel () =
  let big =
    A.Protocol_under_test.thresholded
      ~setting:
        (setting ~k:4 ~topology:Topology.Fully_connected
           ~auth:Core.Setting.Unauthenticated ~tl:1 ~tr:1)
  in
  let stress pool =
    A.Scaling.stress ?pool ~topology:Topology.Fully_connected ~big_k:4
      ~small_ks:[ 2; 4 ] ~seeds:[ 1; 2 ] big
  in
  let sequential = stress None in
  let parallel = Pool.with_pool ~jobs:2 (fun pool -> stress (Some pool)) in
  Alcotest.(check bool) "stress results identical" true (sequential = parallel);
  List.iter
    (fun (small_k, seed, violations) ->
      Alcotest.(check bool)
        (Printf.sprintf "no violation at small_k=%d seed=%d" small_k seed)
        true (violations = []))
    parallel

(* --- T-scale harness (Scale) --- *)

let scale_row : H.Scale.row = { k = 200; seed = 17; family = SM.Flat.Uniform }

let scale_row_common : H.Scale.row =
  { k = 150; seed = 23; family = SM.Flat.Common_acceptors }

(* The deterministic projection of a result: everything but wall clocks. *)
let scale_det (r : H.Scale.result) =
  ( r.row,
    r.stats,
    r.blocking_gs,
    r.blocking_perturbed,
    r.stable,
    r.eps_min,
    r.fingerprint )

let test_scale_row_parallel_equals_sequential () =
  List.iter
    (fun row ->
      let p = H.Scale.prepare row in
      (* run_row itself asserts shard-count identity when given a pool;
         we additionally check the assembled deterministic fields. *)
      let seq = H.Scale.run_row p in
      let par = Pool.with_pool ~jobs:3 (fun pool -> H.Scale.run_row ~pool p) in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic fields identical" (H.Scale.label row))
        true
        (scale_det seq = scale_det par);
      Alcotest.(check bool)
        (Printf.sprintf "%s GS output stable" (H.Scale.label row))
        true seq.stable;
      Alcotest.(check bool)
        (Printf.sprintf "%s perturbation exposes blocking pairs"
           (H.Scale.label row))
        true
        (seq.blocking_perturbed > 0))
    [ scale_row; scale_row_common ]

let test_scale_shard_counts_partition () =
  let p = H.Scale.prepare scale_row in
  let counts = List.map (H.Scale.run_cell p) (H.Scale.cells p) in
  Alcotest.(check int)
    "2 * shards cells" (2 * H.Scale.shards) (List.length counts);
  let r = H.Scale.run_row p in
  let gs_sum, pert_sum =
    List.fold_left2
      (fun (g, q) (c : H.Scale.cell) n ->
        match c.target with
        | H.Scale.Gs -> g + n, q
        | H.Scale.Perturbed -> g, q + n)
      (0, 0) (H.Scale.cells p) counts
  in
  Alcotest.(check int) "gs shards sum" r.blocking_gs gs_sum;
  Alcotest.(check int) "perturbed shards sum" r.blocking_perturbed pert_sum

let test_scale_repeat_runs_identical () =
  let run () =
    Pool.with_pool ~jobs:2 (fun pool ->
        List.map scale_det
          (List.map
             (fun row -> H.Scale.run_row ~pool (H.Scale.prepare row))
             [ scale_row; scale_row_common ]))
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let test_scale_json_schema () =
  let results =
    List.map
      (fun row -> H.Scale.run_row (H.Scale.prepare row))
      [ scale_row; scale_row_common ]
  in
  let json = H.Scale.to_json ~jobs:1 results in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
    go 0
  in
  (* The exact shapes bench_compare's scanner keys on. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "row marker for %s" (H.Scale.label r.H.Scale.row))
        true
        (contains
           (Printf.sprintf "{\"row\": \"%s\"" (H.Scale.label r.H.Scale.row))))
    results;
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "key %s present" key)
        true
        (contains (Printf.sprintf "\"%s\":" key)))
    [
      "proposals"; "rounds"; "blocking_gs"; "stable"; "blocking_perturbed";
      "eps_min"; "fingerprint"; "gs_ms"; "verify_sequential_ms";
      "verify_parallel_ms"; "jobs";
    ]

let () =
  Alcotest.run "sweep"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "jobs=1 runs inline in order" `Quick
            test_map_sequential_when_one_job;
          Alcotest.test_case "first failure propagates" `Quick
            test_map_propagates_first_failure;
          Alcotest.test_case "map after shutdown raises" `Quick
            test_map_after_shutdown_raises;
          Alcotest.test_case "jobs accessor" `Quick test_jobs_accessor;
          Alcotest.test_case "large input stays ordered" `Quick
            test_map_large_input_ordered;
          Alcotest.test_case "jobs exceed items" `Quick test_map_jobs_exceed_items;
          Alcotest.test_case "nested exceptions" `Quick test_map_nested_exceptions;
          Alcotest.test_case "exceptions on jobs=1 path" `Quick
            test_map_exceptions_jobs1;
          Alcotest.test_case "pool usable after failed map" `Quick
            test_map_usable_after_failure;
          Alcotest.test_case "BSM_JOBS oversubscription clamped" `Quick
            test_default_jobs_clamped;
          Alcotest.test_case "--jobs flag beats BSM_JOBS" `Quick
            test_resolve_jobs_flag_beats_env;
          Alcotest.test_case "clamp warning fires once per process" `Quick
            test_clamp_warns_once;
          Alcotest.test_case "randomized costs identical for jobs 1..8" `Quick
            test_randomized_costs_all_jobs;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "straggler's lane rebalances via steals" `Quick
            test_straggler_rebalances;
          Alcotest.test_case "global pool persists across maps" `Quick
            test_global_pool_persists;
        ] );
      ( "fused",
        [
          Alcotest.test_case "fused tables match sequential" `Quick
            test_fused_matches_sequential;
          Alcotest.test_case "lifecycle errors" `Quick test_fused_lifecycle_errors;
          Alcotest.test_case "failure isolates tables" `Quick
            test_fused_failure_isolates_tables;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel sweep == sequential sweep" `Quick
            test_sweep_parallel_equals_sequential;
          Alcotest.test_case "parallel sweep repeatable" `Quick
            test_sweep_repeated_runs_identical;
          Alcotest.test_case "Scenario.run_all parallel == sequential" `Quick
            test_scenario_run_all_parallel;
          Alcotest.test_case "Evaluate.run_batch parallel == sequential" `Quick
            test_evaluate_batch_parallel;
          Alcotest.test_case "Scaling.stress parallel == sequential" `Quick
            test_scaling_stress_parallel;
        ] );
      ( "scale",
        [
          Alcotest.test_case "row parallel == sequential" `Quick
            test_scale_row_parallel_equals_sequential;
          Alcotest.test_case "shard counts partition the row" `Quick
            test_scale_shard_counts_partition;
          Alcotest.test_case "repeat runs identical" `Quick
            test_scale_repeat_runs_identical;
          Alcotest.test_case "JSON schema matches bench_compare scanner" `Quick
            test_scale_json_schema;
        ] );
    ]
